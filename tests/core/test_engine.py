"""Tests for the pluggable execution-backend layer (`repro.core.engine`).

Covers the backend registry, the shared-memory arena round-trip, the
adaptive chunk scheduler, resilience semantics (retry / crash / timeout /
fault injection) on the shared backend, the compiled propensity-table
cache, and the ``run_jobs(backend=...)`` / ``EnsembleConfig(backend=...)``
integration.  The statistical half of backend invariance lives in
``tests/verify/test_backend_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    ExecutionBackend,
    PropensityTableCache,
    ProcessBackend,
    SerialBackend,
    SharedMemoryBackend,
    _ArenaBuilder,
    _arena_loads,
    adaptive_chunk_size,
    available_backends,
    get_backend,
    propensity_cache,
    register_backend,
)
from repro.core.resilience import RetryPolicy, run_jobs
from repro.devices.technology import TECH_45NM, TECH_90NM
from repro.errors import SimulationError
from repro.markov.batch import BatchPropensity
from repro.testing.faults import inject_faults
from repro.traps.propensity import population_propensity
from repro.traps.trap import Trap

pytestmark = pytest.mark.tier1

BACKENDS = ("serial", "process", "shared")

#: Shared payload array — interned once in the arena across all jobs.
GRID = np.arange(4096, dtype=float)


def scaled_sum(payload):
    """Module-level job function (picklable for process workers)."""
    array, scale = payload
    return float(array.sum() * scale)


def echo_array(payload):
    """Returns a copy of its array leaf (exercises result pickling)."""
    array, scale = payload
    return array * scale


def make_jobs(n: int) -> list:
    return [(GRID, i) for i in range(n)]


# ======================================================================
# Registry
# ======================================================================

class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_get_backend_by_name_class_and_instance(self):
        by_name = get_backend("shared")
        assert isinstance(by_name, SharedMemoryBackend)
        assert isinstance(get_backend(SerialBackend), SerialBackend)
        instance = ProcessBackend()
        assert get_backend(instance) is instance

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("quantum")
        with pytest.raises(ValueError, match="available"):
            get_backend(None)

    def test_registration_override_and_restore(self):
        class Shadow(SerialBackend):
            name = "serial"

        try:
            register_backend(Shadow)
            assert isinstance(get_backend("serial"), Shadow)
        finally:
            register_backend(SerialBackend)
        assert type(get_backend("serial")) is SerialBackend

    def test_backend_base_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ExecutionBackend().run(scaled_sum, [], keys=[])


# ======================================================================
# Adaptive chunk scheduling
# ======================================================================

class TestAdaptiveChunkSize:
    def test_deep_queue_gets_large_chunks(self):
        assert adaptive_chunk_size(1000, 4) == 64  # capped at max_chunk

    def test_tail_shrinks_to_single_jobs(self):
        assert adaptive_chunk_size(3, 4) == 1
        assert adaptive_chunk_size(1, 4) == 1

    def test_never_exceeds_remaining(self):
        assert adaptive_chunk_size(2, 1, min_chunk=8) == 2

    def test_zero_remaining(self):
        assert adaptive_chunk_size(0, 4) == 0

    def test_monotone_in_queue_depth(self):
        sizes = [adaptive_chunk_size(r, 4) for r in range(1, 600)]
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="chunk_factor"):
            SharedMemoryBackend(chunk_factor=0.0)
        with pytest.raises(ValueError, match="min_chunk"):
            SharedMemoryBackend(min_chunk=8, max_chunk=4)


# ======================================================================
# Shared-memory arena
# ======================================================================

class TestArena:
    def test_round_trip_is_bit_identical(self):
        builder = _ArenaBuilder()
        payload = {"grid": GRID, "nested": [(GRID[:7], 3), "tag"],
                   "matrix": np.arange(12.0).reshape(3, 4)}
        blob = builder.dumps(payload)
        shm, table = builder.seal()
        try:
            restored = _arena_loads(blob, shm.buf, table)
            np.testing.assert_array_equal(restored["grid"], GRID)
            np.testing.assert_array_equal(restored["nested"][0][0], GRID[:7])
            assert restored["nested"][0][1] == 3
            np.testing.assert_array_equal(
                restored["matrix"], np.arange(12.0).reshape(3, 4))
            # Arena views alias one block across jobs: must be frozen.
            assert not restored["grid"].flags.writeable
            del restored
        finally:
            shm.close()
            shm.unlink()

    def test_identical_arrays_interned_once(self):
        builder = _ArenaBuilder()
        for scale in range(10):
            builder.dumps((GRID, scale))
        assert builder.n_arrays == 1
        assert builder.dedup_hits == 9

    def test_array_free_payload_needs_no_block(self):
        builder = _ArenaBuilder()
        blob = builder.dumps({"answer": 42})
        shm, table = builder.seal()
        assert shm is None
        assert _arena_loads(blob, None, table) == {"answer": 42}


# ======================================================================
# Backend contract (all three)
# ======================================================================

class TestBackendContract:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_values_in_job_order(self, name):
        backend = get_backend(name)
        results = backend.run(scaled_sum, make_jobs(12),
                              keys=list(range(12)), workers=3)
        assert [r.key for r in results] == list(range(12))
        assert all(r.status == "ok" for r in results)
        expected = [float(GRID.sum() * i) for i in range(12)]
        assert [r.value for r in results] == expected

    @pytest.mark.parametrize("name", BACKENDS)
    def test_array_results_exact(self, name):
        results = get_backend(name).run(echo_array, make_jobs(4),
                                        keys=list(range(4)), workers=2)
        for result in results:
            np.testing.assert_array_equal(result.value,
                                          GRID * result.key)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_jobs(self, name):
        assert get_backend(name).run(scaled_sum, [], keys=[]) == []

    @pytest.mark.parametrize("name", BACKENDS)
    def test_on_result_fires_once_per_job(self, name):
        seen: list = []
        get_backend(name).run(scaled_sum, make_jobs(8),
                              keys=list(range(8)), workers=2,
                              on_result=lambda r: seen.append(r.key))
        assert sorted(seen) == list(range(8))

    def test_convergence_fault_statuses_invariant_across_backends(self):
        """Per-job fault decisions hash (site, key, attempt) — the
        executing backend must not change any terminal status/value."""
        runs = {}
        for name in BACKENDS:
            with inject_faults(convergence_rate=0.4, seed=7):
                results = get_backend(name).run(
                    scaled_sum, make_jobs(24), keys=list(range(24)),
                    workers=3, policy=RetryPolicy(attempts=3))
            runs[name] = [(r.status, r.value, r.attempts)
                          for r in results]
        assert runs["serial"] == runs["process"] == runs["shared"]
        statuses = {status for status, _, _ in runs["serial"]}
        assert "recovered" in statuses  # the drill actually exercised retries


# ======================================================================
# Shared backend resilience semantics
# ======================================================================

class TestSharedBackendResilience:
    def test_workers_none_still_uses_a_real_worker(self):
        results = SharedMemoryBackend().run(
            scaled_sum, make_jobs(3), keys=list(range(3)), workers=None)
        assert [r.value for r in results] == \
            [float(GRID.sum() * i) for i in range(3)]

    def test_crash_drill_reaches_terminal_states(self):
        with inject_faults(crash_rate=0.3, seed=7):
            results = SharedMemoryBackend().run(
                scaled_sum, make_jobs(24), keys=list(range(24)),
                workers=3, policy=RetryPolicy(attempts=3))
        assert len(results) == 24
        assert all(r.status in ("ok", "recovered", "failed")
                   for r in results)
        for result in results:
            if result.succeeded:
                assert result.value == float(GRID.sum() * result.key)

    def test_hang_reaped_as_timeout(self):
        with inject_faults(hang_rate=1.0, hang_seconds=10.0, seed=1):
            results = SharedMemoryBackend().run(
                scaled_sum, make_jobs(3), keys=list(range(3)), workers=2,
                policy=RetryPolicy(attempts=1, timeout=0.3))
        assert [r.status for r in results] == ["timeout"] * 3
        assert all(r.error_type == "WorkerTimeoutError" for r in results)

    def test_arena_fault_site_fails_the_decode(self):
        """The shared-only ``arena`` site models a corrupted payload
        descriptor: with rate 1 every attempt fails, and the policy's
        retry ladder is consumed in the worker-side decode path."""
        with inject_faults(arena_rate=1.0, seed=5):
            results = SharedMemoryBackend().run(
                scaled_sum, make_jobs(4), keys=list(range(4)), workers=2,
                policy=RetryPolicy(attempts=2))
        assert all(r.status == "failed" for r in results)
        assert all("arena decode" in r.error for r in results)
        assert all(r.attempts == 2 for r in results)

    def test_arena_site_inert_on_in_parent_backends(self):
        with inject_faults(arena_rate=1.0, seed=5):
            results = get_backend("serial").run(
                scaled_sum, make_jobs(4), keys=list(range(4)))
        assert all(r.status == "ok" for r in results)


# ======================================================================
# run_jobs / ensemble integration
# ======================================================================

class TestRunJobsBackendParam:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_dispatches_to_named_backend(self, name):
        results = run_jobs(scaled_sum, make_jobs(6), workers=2,
                           backend=name)
        assert [r.value for r in results] == \
            [float(GRID.sum() * i) for i in range(6)]

    def test_default_backend_untouched(self):
        results = run_jobs(scaled_sum, make_jobs(3))
        assert all(r.status == "ok" for r in results)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            run_jobs(scaled_sum, make_jobs(1), backend="warp")

    def test_ensemble_config_validates_backend(self):
        from repro.core.ensemble import EnsembleConfig

        with pytest.raises(ValueError, match="unknown backend"):
            EnsembleConfig(n_cells=1, backend="warp")
        assert EnsembleConfig(n_cells=1, backend="shared").backend == \
            "shared"


# ======================================================================
# Propensity-table cache
# ======================================================================

@pytest.fixture
def bias_grid():
    times = np.linspace(0.0, 1e-3, 64)
    return times, np.full_like(times, 0.8)


TRAPS = [Trap(y_tr=0.4e-9, e_tr=0.10, label="a"),
         Trap(y_tr=0.6e-9, e_tr=-0.05)]


class TestPropensityTableCache:
    def test_hit_returns_the_same_table(self, bias_grid):
        times, v_gs = bias_grid
        cache = PropensityTableCache(maxsize=4)
        first = cache.population(TRAPS, TECH_90NM, times, v_gs)
        assert cache.population(TRAPS, TECH_90NM, times, v_gs) is first
        assert cache.info() == {"hits": 1, "misses": 1, "entries": 1,
                                "maxsize": 4}

    def test_cached_table_matches_direct_build(self, bias_grid):
        times, v_gs = bias_grid
        cache = PropensityTableCache()
        cached = cache.population(TRAPS, TECH_90NM, times, v_gs)
        direct = population_propensity(TRAPS, TECH_90NM, times, v_gs)
        assert cached.digest() == direct.digest()

    def test_labels_do_not_affect_the_key(self, bias_grid):
        times, v_gs = bias_grid
        cache = PropensityTableCache()
        first = cache.population(TRAPS, TECH_90NM, times, v_gs)
        relabeled = [Trap(y_tr=t.y_tr, e_tr=t.e_tr, label="x")
                     for t in TRAPS]
        assert cache.population(relabeled, TECH_90NM, times, v_gs) is first

    def test_physics_inputs_do_affect_the_key(self, bias_grid):
        times, v_gs = bias_grid
        cache = PropensityTableCache()
        base = cache.population(TRAPS, TECH_90NM, times, v_gs)
        assert cache.population(TRAPS, TECH_45NM, times, v_gs) is not base
        assert cache.population(TRAPS[:1], TECH_90NM, times, v_gs) \
            is not base
        assert cache.population(TRAPS, TECH_90NM, times, v_gs * 0.9) \
            is not base

    def test_lru_eviction(self, bias_grid):
        times, v_gs = bias_grid
        cache = PropensityTableCache(maxsize=2)
        for k in range(4):
            cache.population([Trap(y_tr=(3 + k) * 1e-10, e_tr=0.2)],
                             TECH_90NM, times, v_gs)
        assert cache.info()["entries"] == 2

    def test_singleton_and_validation(self):
        assert propensity_cache() is propensity_cache()
        with pytest.raises(ValueError, match="maxsize"):
            PropensityTableCache(maxsize=0)


class TestBatchPropensityDigest:
    def test_equal_content_equal_digest(self):
        times = np.array([0.0, 1.0])
        a = BatchPropensity(times=times, capture=np.ones((2, 2)),
                            emission=np.full((2, 2), 0.5))
        b = BatchPropensity(times=times.copy(),
                            capture=np.ones((2, 2)),
                            emission=np.full((2, 2), 0.5))
        assert a.digest() == b.digest()
        assert a.digest() is a.digest()  # cached

    def test_content_changes_change_the_digest(self):
        times = np.array([0.0, 1.0])
        a = BatchPropensity(times=times, capture=np.ones((2, 2)),
                            emission=np.full((2, 2), 0.5))
        b = BatchPropensity(times=times, capture=np.ones((2, 2)),
                            emission=np.full((2, 2), 0.6))
        assert a.digest() != b.digest()
