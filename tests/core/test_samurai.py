"""Tests for the Samurai engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.technology import TECH_90NM
from repro.errors import SimulationError
from repro.core.samurai import Samurai
from repro.sram.biases import BiasRecord
from repro.sram.cell import build_sram_cell
from repro.traps.band import crossing_energy
from repro.traps.profiling import TrapProfiler
from repro.traps.trap import Trap

pytestmark = pytest.mark.tier1


def flat_biases(cell, v_drive=0.6, i_d=1e-5, n=64, t_stop=1e-5):
    times = np.linspace(0.0, t_stop, n)
    return {name: BiasRecord(name=name, times=times,
                             v_drive=np.full(n, v_drive),
                             i_d=np.full(n, i_d))
            for name in cell.transistors}


class TestConstruction:
    def test_rejects_unknown_transistor(self):
        cell = build_sram_cell()
        with pytest.raises(SimulationError):
            Samurai(cell=cell, trap_populations={"M9": []})

    def test_with_sampled_traps(self, rng):
        cell = build_sram_cell()
        engine = Samurai.with_sampled_traps(cell, TrapProfiler(TECH_90NM),
                                            rng)
        assert set(engine.trap_populations) == set(cell.transistors)
        assert engine.total_trap_count > 0

    def test_trap_counts_scale_with_area(self, rng):
        """Pull-downs (widest) should average more traps than pull-ups."""
        cell = build_sram_cell()
        profiler = TrapProfiler(TECH_90NM)
        counts = {"pd": 0, "pu": 0}
        for seed in range(10):
            engine = Samurai.with_sampled_traps(
                cell, profiler, np.random.default_rng(seed))
            counts["pd"] += len(engine.trap_populations["M5"])
            counts["pu"] += len(engine.trap_populations["M3"])
        assert counts["pd"] > counts["pu"]


class TestGenerate:
    def test_all_transistors_produce_results(self, rng):
        cell = build_sram_cell()
        y = 1.4e-9
        trap = Trap(y_tr=y, e_tr=crossing_energy(0.6, y, TECH_90NM))
        engine = Samurai(cell=cell,
                         trap_populations={name: [trap]
                                           for name in cell.transistors})
        results = engine.generate(flat_biases(cell), rng)
        assert set(results) == set(cell.transistors)
        for name, result in results.items():
            assert result.trace.label == name
            assert len(result.occupancies) == 1

    def test_empty_population_zero_trace(self, rng):
        cell = build_sram_cell()
        engine = Samurai(cell=cell, trap_populations={})
        results = engine.generate(flat_biases(cell), rng)
        assert all(r.trace.peak() == 0.0 for r in results.values())

    def test_missing_bias_rejected(self, rng):
        cell = build_sram_cell()
        engine = Samurai(cell=cell, trap_populations={})
        biases = flat_biases(cell)
        del biases["M1"]
        with pytest.raises(SimulationError):
            engine.generate(biases, rng)

    def test_wrong_bias_type_rejected(self, rng):
        cell = build_sram_cell()
        engine = Samurai(cell=cell, trap_populations={})
        biases = flat_biases(cell)
        biases["M1"] = "oops"
        with pytest.raises(SimulationError):
            engine.generate(biases, rng)

    def test_describe_populations(self, rng):
        cell = build_sram_cell()
        engine = Samurai.with_sampled_traps(cell, TrapProfiler(TECH_90NM),
                                            rng)
        summary = engine.describe_populations()
        assert set(summary) == set(cell.transistors)
        for name, info in summary.items():
            if info["count"]:
                assert info["rate_min"] <= info["rate_max"]
