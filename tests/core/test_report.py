"""Tests for the report helpers."""

from __future__ import annotations

import os

import pytest

from repro.core.report import format_table, sparkline, write_csv
from repro.errors import AnalysisError

pytestmark = pytest.mark.tier1


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", None]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[2]
        assert "2.5" in lines[3]
        assert "-" in lines[4]  # None renders as dash

    def test_width_mismatch(self):
        with pytest.raises(AnalysisError):
            format_table(["a"], [[1, 2]])

    def test_empty_headers(self):
        with pytest.raises(AnalysisError):
            format_table([], [])

    def test_float_formats(self):
        text = format_table(["v"], [[1.23456789e-12], [12345.6], [0.0],
                                    [True]])
        assert "1.235e-12" in text
        assert "0" in text
        assert "yes" in text


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "sub", "out.csv")
        written = write_csv(path, ["x", "y"], [[1, 2], [3, 4]])
        assert written == path
        with open(path) as handle:
            content = handle.read()
        assert content.splitlines() == ["x,y", "1,2", "3,4"]


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        line = sparkline(range(1000), width=20)
        assert len(line) == 20
