"""Regression tests for the canonical Fig.-8 experiment configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_methodology
from repro.core.experiments import (
    FIG8_BITS,
    FIG8_RTN_SCALE,
    fig8_cell_spec,
    fig8_config,
    fig8_pattern,
)
from repro.sram.detectors import OpOutcome

pytestmark = pytest.mark.tier1


class TestConfigurationShape:
    def test_bits_match_paper(self):
        assert list(FIG8_BITS) == [1, 1, 0, 1, 0, 1, 0, 0, 1]

    def test_scale_matches_paper(self):
        assert FIG8_RTN_SCALE == 30.0

    def test_pattern_timing_consistent(self):
        pattern = fig8_pattern()
        assert len(pattern.operations) == 9
        assert pattern.duration == pytest.approx(36e-9)


class TestFig8Runs:
    def test_clean_pattern_writes_perfectly(self):
        """Fig. 8(a): the pattern writes cleanly without RTN."""
        rng = np.random.default_rng(2)
        result = run_methodology(fig8_pattern(), rng, spec=fig8_cell_spec(),
                                 config=fig8_config(rtn_scale=0.0))
        assert result.clean_counts == {"ok": 9, "slow": 0, "error": 0}

    def test_x30_seed2_produces_write_error(self):
        """Fig. 8(e): with the paper's x30 acceleration a write error
        appears (regression-pinned seed)."""
        rng = np.random.default_rng(2)
        result = run_methodology(fig8_pattern(), rng, spec=fig8_cell_spec(),
                                 config=fig8_config())
        assert result.clean_counts["error"] == 0
        assert result.cell_compromised
        assert 3 in result.failed_slots()
        failed = result.rtn_results[3]
        assert failed.outcome is OpOutcome.ERROR
        assert failed.expected_bit == 1
        # The stored node ended on the wrong side of the supply midpoint.
        assert failed.final_q < fig8_cell_spec().supply / 2.0
        # The physical clip keeps the nodes within the rails.
        q = result.rtn_waveform["q"]
        vdd = fig8_cell_spec().supply
        assert q.max() < 1.1 * vdd
        assert q.min() > -0.1 * vdd
