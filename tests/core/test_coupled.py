"""Tests for the bi-directionally coupled co-simulation (extension E1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coupled import run_coupled
from repro.devices.technology import TECH_90NM
from repro.errors import SimulationError
from repro.sram.cell import SramCellSpec, build_sram_cell
from repro.sram.patterns import write_pattern
from repro.traps.band import crossing_energy
from repro.traps.trap import Trap

pytestmark = pytest.mark.tier1


def fast_trap(v_cross: float) -> Trap:
    """A trap fast enough to toggle inside a nanosecond-scale run."""
    y = 0.18e-9  # propensity sum ~1.7e9 Hz
    return Trap(y_tr=y, e_tr=crossing_energy(v_cross, y, TECH_90NM))


SHORT = write_pattern([1, 0], cycle=4e-9, wl_delay=1e-9, wl_width=2e-9)


class TestInterface:
    def test_rejects_unknown_transistor(self, rng):
        cell = build_sram_cell()
        with pytest.raises(SimulationError):
            run_coupled(cell, SHORT, {"M9": [fast_trap(0.5)]}, rng)

    def test_rejects_negative_scale(self, rng):
        cell = build_sram_cell()
        with pytest.raises(SimulationError):
            run_coupled(cell, SHORT, {}, rng, rtn_scale=-1.0)

    def test_sources_removed_after_run(self, rng):
        cell = build_sram_cell()
        before = len(cell.circuit.elements)
        run_coupled(cell, SHORT, {"M1": [fast_trap(0.5)]}, rng,
                    record_every=4)
        # The held source is removed; the stimuli remain installed.
        assert len(cell.circuit.elements) == before

    def test_empty_population_matches_pattern(self, rng):
        cell = build_sram_cell()
        result = run_coupled(cell, SHORT, {}, rng, record_every=4)
        assert [r.outcome.value for r in result.op_results] == ["ok", "ok"]
        assert result.occupancies == {}


class TestCoupledPhysics:
    def test_occupancies_returned_per_trap(self, rng):
        cell = build_sram_cell()
        traps = {"M5": [fast_trap(0.5), fast_trap(0.6)]}
        result = run_coupled(cell, SHORT, traps, rng, record_every=4)
        assert len(result.occupancies["M5"]) == 2
        for trace in result.occupancies["M5"]:
            assert trace.t_stop == pytest.approx(SHORT.duration)

    def test_trap_activity_follows_circuit_state(self, rng):
        """M5's gate is Q: after the write-1 its trap sees a high drive
        and fills; after the write-0 it empties — with the bias coming
        from the co-simulated circuit itself."""
        cell = build_sram_cell()
        pattern = write_pattern([1, 0], cycle=6e-9, wl_delay=1e-9,
                                wl_width=2e-9)
        trap = fast_trap(0.5 * cell.vdd)
        result = run_coupled(cell, pattern, {"M5": [trap]}, rng,
                             record_every=4)
        trace = result.occupancies["M5"][0]
        # Late in slot 0 (Q=1): filled most of the time.
        fill_one = trace.restricted(4e-9, 6e-9).fraction_filled()
        # Late in slot 1 (Q=0): empty most of the time.
        fill_zero = trace.restricted(10e-9, 12e-9).fraction_filled()
        assert fill_one > 0.6
        assert fill_zero < 0.4

    def test_clean_pattern_unharmed_at_unit_scale(self, rng):
        cell = build_sram_cell()
        traps = {name: [fast_trap(0.5)] for name in cell.transistors}
        result = run_coupled(cell, SHORT, traps, rng, rtn_scale=1.0,
                             record_every=4)
        assert all(r.outcome.value == "ok" for r in result.op_results)

    def test_reproducible(self, rng_factory):
        cell_a = build_sram_cell()
        cell_b = build_sram_cell()
        traps = {"M6": [fast_trap(0.5)]}
        res_a = run_coupled(cell_a, SHORT, traps, rng_factory(3),
                            record_every=4)
        res_b = run_coupled(cell_b, SHORT, traps, rng_factory(3),
                            record_every=4)
        assert np.array_equal(res_a.occupancies["M6"][0].times,
                              res_b.occupancies["M6"][0].times)
