"""Shared fixtures for the SAMURAI-reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro._deprecation import reset_registry


@pytest.fixture(autouse=True)
def _fresh_deprecation_registry():
    """Isolate the warn-once registry so each test sees its warning.

    Deprecation shims warn once per call site per process; without a
    reset, a test exercising the same site as an earlier test would see
    no warning and ``pytest.warns`` assertions would become
    order-dependent.
    """
    reset_registry()
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded generator, fresh per test."""
    return np.random.default_rng(20110314)  # DATE 2011 dates


@pytest.fixture
def rng_factory():
    """Factory for independently seeded generators inside one test."""
    def make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)
    return make
