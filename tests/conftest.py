"""Shared fixtures for the SAMURAI-reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded generator, fresh per test."""
    return np.random.default_rng(20110314)  # DATE 2011 dates


@pytest.fixture
def rng_factory():
    """Factory for independently seeded generators inside one test."""
    def make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)
    return make
