"""Tests for the 6T cell builder."""

from __future__ import annotations

import dataclasses

import pytest

from repro.devices.technology import TECH_45NM, TECH_90NM
from repro.errors import NetlistError
from repro.spice.dcop import dc_operating_point
from repro.sram.cell import (
    SramCellSpec,
    TRANSISTOR_NAMES,
    build_sram_cell,
)

pytestmark = pytest.mark.tier1


class TestSpec:
    def test_defaults(self):
        spec = SramCellSpec()
        assert spec.technology is TECH_90NM
        assert spec.supply == TECH_90NM.vdd

    def test_vdd_override(self):
        assert SramCellSpec(vdd=0.5).supply == 0.5

    def test_validation(self):
        with pytest.raises(NetlistError):
            SramCellSpec(pass_factor=0.0)
        with pytest.raises(NetlistError):
            SramCellSpec(node_capacitance=-1.0)
        with pytest.raises(NetlistError):
            SramCellSpec(vdd=0.0)

    def test_device_params_roles(self):
        spec = SramCellSpec()
        pd = spec.device_params("M5")
        pg = spec.device_params("M1")
        pu = spec.device_params("M3")
        assert pd.polarity == "n" and pg.polarity == "n"
        assert pu.polarity == "p"
        # Classic ratioed sizing: pulldown > pass > pullup.
        assert pd.width > pg.width > pu.width

    def test_device_params_unknown(self):
        with pytest.raises(NetlistError):
            SramCellSpec().device_params("M7")

    def test_other_technology(self):
        spec = SramCellSpec(technology=TECH_45NM)
        assert spec.device_params("M1").technology is TECH_45NM


class TestBuiltCell:
    def test_all_transistors_present(self):
        cell = build_sram_cell()
        assert set(cell.transistors) == set(TRANSISTOR_NAMES)
        assert set(cell.terminals) == set(TRANSISTOR_NAMES)

    def test_paper_gate_assignments(self):
        """M5's gate is Q and M6's gate is QB (paper Fig. 8 b, c)."""
        cell = build_sram_cell()
        assert cell.terminals["M5"][1] == "q"
        assert cell.terminals["M6"][1] == "qb"
        assert cell.terminals["M1"][1] == "wl"
        assert cell.terminals["M2"][1] == "wl"

    def test_sources_present(self):
        cell = build_sram_cell()
        for name in ("VDD", "VWL", "VBL", "VBLB"):
            assert cell.source(name) is not None

    def test_initial_voltages(self):
        cell = build_sram_cell()
        holding_one = cell.initial_voltages(1)
        assert holding_one["q"] == cell.vdd
        assert holding_one["qb"] == 0.0
        holding_zero = cell.initial_voltages(0)
        assert holding_zero["q"] == 0.0
        with pytest.raises(NetlistError):
            cell.initial_voltages(2)

    def test_hold_state_is_dc_stable(self):
        """With WL low, both data states are DC solutions of the cell."""
        cell = build_sram_cell()
        for bit in (0, 1):
            guess = cell.initial_voltages(bit)
            sol = dc_operating_point(cell.circuit, initial_guess=guess)
            expected_q = cell.vdd if bit else 0.0
            assert sol["q"] == pytest.approx(expected_q, abs=0.05)
            assert sol["qb"] == pytest.approx(cell.vdd - expected_q, abs=0.05)

    def test_node_capacitors_attached(self):
        cell = build_sram_cell(SramCellSpec(node_capacitance=1e-15))
        names = {e.name for e in cell.circuit.elements}
        assert "Cq" in names and "Cqb" in names

    def test_set_stimuli(self):
        from repro.spice.sources import DC
        cell = build_sram_cell()
        cell.set_stimuli(DC(1.0), DC(0.5), DC(0.2))
        assert cell.source("VWL").stimulus.value == 1.0
        assert cell.source("VBL").stimulus.value == 0.5
        assert cell.source("VBLB").stimulus.value == 0.2
