"""Tests for RTN source injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.rtn.trace import RTNTrace
from repro.spice.elements import CurrentSource
from repro.sram.cell import build_sram_cell
from repro.sram.injection import (
    RTN_SOURCE_PREFIX,
    attach_rtn_sources,
    detach_rtn_sources,
)

pytestmark = pytest.mark.tier1


def flat_trace(value: float, label: str = "") -> RTNTrace:
    return RTNTrace(times=np.array([0.0, 1e-7]),
                    current=np.array([value, value]), label=label)


class TestAttach:
    def test_creates_sources(self):
        cell = build_sram_cell()
        created = attach_rtn_sources(
            cell, {"M1": flat_trace(1e-6), "M5": flat_trace(2e-6)})
        assert sorted(created) == ["Irtn_M1", "Irtn_M5"]
        for name in created:
            assert isinstance(cell.circuit.element(name), CurrentSource)

    def test_orientation_source_to_drain(self):
        cell = build_sram_cell()
        attach_rtn_sources(cell, {"M1": flat_trace(1e-6)})
        source = cell.circuit.element("Irtn_M1")
        drain, __, src, __ = cell.terminals["M1"]
        assert source.nodes == (cell.circuit.node(src),
                                cell.circuit.node(drain))

    def test_scale_applied(self):
        cell = build_sram_cell()
        attach_rtn_sources(cell, {"M1": flat_trace(1e-6)}, scale=30.0)
        stim = cell.circuit.element("Irtn_M1").stimulus
        assert stim(5e-8) == pytest.approx(30e-6)

    def test_unknown_transistor(self):
        cell = build_sram_cell()
        with pytest.raises(SimulationError):
            attach_rtn_sources(cell, {"M9": flat_trace(1e-6)})

    def test_bad_trace_type(self):
        cell = build_sram_cell()
        with pytest.raises(SimulationError):
            attach_rtn_sources(cell, {"M1": "zap"})

    def test_negative_scale_rejected(self):
        cell = build_sram_cell()
        with pytest.raises(SimulationError):
            attach_rtn_sources(cell, {"M1": flat_trace(1e-6)}, scale=-1.0)


class TestDetach:
    def test_round_trip(self):
        cell = build_sram_cell()
        before = len(cell.circuit.elements)
        attach_rtn_sources(cell, {name: flat_trace(1e-6)
                                  for name in cell.transistors})
        assert len(cell.circuit.elements) == before + 6
        removed = detach_rtn_sources(cell)
        assert removed == 6
        assert len(cell.circuit.elements) == before

    def test_detach_without_attach(self):
        assert detach_rtn_sources(build_sram_cell()) == 0

    def test_prefix_namespacing(self):
        cell = build_sram_cell()
        attach_rtn_sources(cell, {"M1": flat_trace(1e-6)})
        names = [e.name for e in cell.circuit.elements
                 if e.name.startswith(RTN_SOURCE_PREFIX)]
        assert names == ["Irtn_M1"]


class TestCircuitEffect:
    def test_injection_opposes_conduction(self):
        """A large positive trace on M6 (the NMOS holding Q low) reduces
        its pulldown: Q rises above 0 in the hold state."""
        from repro.spice.transient import simulate_transient
        cell = build_sram_cell()
        baseline = simulate_transient(
            cell.circuit, 2e-9, 1e-11,
            initial_voltages=cell.initial_voltages(1))
        q_clean = baseline.final("q")

        cell2 = build_sram_cell()
        # Holding a 1: M5 conducts (gate=Q=vdd) pulling QB low.  Oppose it.
        attach_rtn_sources(cell2, {"M5": flat_trace(20e-6)})
        disturbed = simulate_transient(
            cell2.circuit, 2e-9, 1e-11,
            initial_voltages=cell2.initial_voltages(1))
        assert disturbed.final("qb") > baseline.final("qb") + 0.01
        assert q_clean == pytest.approx(cell.vdd, abs=0.01)
