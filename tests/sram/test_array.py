"""Tests for the Monte-Carlo array analysis (extension E2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.methodology import MethodologyConfig
from repro.errors import SimulationError
from repro.sram.array import (
    ArrayConfig,
    sample_vt_shifts,
    simulate_array,
)
from repro.sram.cell import SramCellSpec, TRANSISTOR_NAMES
from repro.sram.patterns import write_pattern

pytestmark = pytest.mark.tier1

TINY_PATTERN = write_pattern([1, 0], cycle=5e-9, wl_delay=1e-9,
                             wl_width=2e-9)


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            ArrayConfig(n_cells=0, base_spec=SramCellSpec(),
                        pattern=TINY_PATTERN)
        with pytest.raises(SimulationError):
            ArrayConfig(n_cells=1, base_spec=SramCellSpec(),
                        pattern=TINY_PATTERN, avt=-1.0)


class TestVtSampling:
    def test_all_transistors_sampled(self, rng):
        shifts = sample_vt_shifts(rng, SramCellSpec(), avt=2.5e-9)
        assert set(shifts) == set(TRANSISTOR_NAMES)

    def test_pelgrom_scaling(self, rng):
        """Smaller devices get wider VT spread (Pelgrom)."""
        spec = SramCellSpec()
        samples = [sample_vt_shifts(rng, spec, avt=2.5e-9)
                   for _ in range(300)]
        std_pu = np.std([s["M3"] for s in samples])   # smallest device
        std_pd = np.std([s["M5"] for s in samples])   # largest device
        assert std_pu > std_pd

    def test_magnitude_plausible(self, rng):
        """~tens of millivolts at 90 nm geometries."""
        samples = [sample_vt_shifts(rng, SramCellSpec(), avt=2.5e-9)["M1"]
                   for _ in range(300)]
        sigma = np.std(samples)
        assert 5e-3 < sigma < 100e-3

    def test_zero_avt_means_no_mismatch(self, rng):
        shifts = sample_vt_shifts(rng, SramCellSpec(), avt=0.0)
        assert all(v == 0.0 for v in shifts.values())


class TestArraySimulation:
    def test_small_array_runs(self, rng):
        config = ArrayConfig(
            n_cells=2, base_spec=SramCellSpec(), pattern=TINY_PATTERN,
            rtn_scale=1.0,
            methodology=MethodologyConfig(record_every=4))
        result = simulate_array(config, rng)
        assert result.n_cells == 2
        assert result.n_slots == 2
        assert 0.0 <= result.cell_failure_rate <= 1.0
        assert 0.0 <= result.slot_failure_rate <= 1.0
        for outcome in result.outcomes:
            assert set(outcome.vt_shifts) == set(TRANSISTOR_NAMES)
            assert outcome.trap_count >= 0

    def test_healthy_cells_do_not_fail(self, rng):
        """At nominal supply, small mismatch and unit RTN the array is
        clean — failures are the rare events the paper describes."""
        config = ArrayConfig(
            n_cells=3, base_spec=SramCellSpec(), pattern=TINY_PATTERN,
            rtn_scale=1.0, avt=1e-9,
            methodology=MethodologyConfig(record_every=4))
        result = simulate_array(config, rng)
        assert result.cell_failure_rate == 0.0
        assert result.baseline_failure_rate == 0.0

    def test_reproducible(self, rng_factory):
        config = ArrayConfig(
            n_cells=2, base_spec=SramCellSpec(), pattern=TINY_PATTERN,
            methodology=MethodologyConfig(record_every=4))
        a = simulate_array(config, rng_factory(9))
        b = simulate_array(config, rng_factory(9))
        assert [o.vt_shifts for o in a.outcomes] == \
            [o.vt_shifts for o in b.outcomes]
        assert [o.trap_count for o in a.outcomes] == \
            [o.trap_count for o in b.outcomes]
