"""Tests for the operation-outcome classifier (Fig. 5 taxonomy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice.waveform import Waveform
from repro.sram.detectors import (
    DetectorThresholds,
    OpOutcome,
    classify_operations,
    count_outcomes,
)
from repro.sram.patterns import write_pattern

pytestmark = pytest.mark.tier1

VDD = 1.0


def synthetic_waveform(settle_at: float, final_level: float,
                       t_end: float = 10e-9) -> Waveform:
    """Q ramps from 0 to ``final_level``, arriving at ``settle_at``."""
    times = np.linspace(0.0, t_end, 1001)
    q = np.clip(times / settle_at, 0.0, 1.0) * final_level
    return Waveform(times, {"q": q})


def single_write_schedule(**kwargs):
    pattern = write_pattern([1], cycle=10e-9, wl_delay=2e-9, wl_width=4e-9,
                            **kwargs)
    return pattern.schedule()


class TestClassification:
    def test_ok_write(self):
        # Settles at 4 ns, WL falls at 6 ns: OK.
        wf = synthetic_waveform(settle_at=4e-9, final_level=VDD)
        results = classify_operations(wf, single_write_schedule(), VDD)
        assert results[0].outcome is OpOutcome.OK
        assert results[0].settle_time < 0.0

    def test_slow_write(self):
        # Settles at 8 ns, WL fell at 6 ns: SLOW (paper Fig. 5 middle).
        wf = synthetic_waveform(settle_at=8e-9, final_level=VDD)
        results = classify_operations(wf, single_write_schedule(), VDD)
        assert results[0].outcome is OpOutcome.SLOW
        assert results[0].settle_time > 0.0

    def test_write_error(self):
        # Q never leaves the wrong side: ERROR (paper Fig. 5 bottom).
        wf = synthetic_waveform(settle_at=4e-9, final_level=0.2)
        results = classify_operations(wf, single_write_schedule(), VDD)
        assert results[0].outcome is OpOutcome.ERROR

    def test_never_quite_valid_is_slow(self):
        # Right side of vdd/2 but below the 0.9 band: SLOW, not OK.
        wf = synthetic_waveform(settle_at=4e-9, final_level=0.7)
        results = classify_operations(wf, single_write_schedule(), VDD)
        assert results[0].outcome is OpOutcome.SLOW
        assert results[0].settle_time is None

    def test_settle_allowance_tolerates_small_delay(self):
        wf = synthetic_waveform(settle_at=6.2e-9, final_level=VDD)
        th = DetectorThresholds(settle_allowance=0.5e-9)
        results = classify_operations(wf, single_write_schedule(), VDD,
                                      thresholds=th)
        assert results[0].outcome is OpOutcome.OK

    def test_multi_slot_mixed(self):
        """A pattern where a later write fails while earlier ones pass."""
        pattern = write_pattern([1, 0], cycle=10e-9, wl_delay=2e-9,
                                wl_width=4e-9)
        times = np.linspace(0.0, 20e-9, 2001)
        q = np.where(times < 4e-9, times / 4e-9, 1.0)   # write-1 OK
        q = np.where(times >= 10e-9, 1.0, q)            # write-0 never happens
        wf = Waveform(times, {"q": q})
        results = classify_operations(wf, pattern.schedule(), VDD)
        assert results[0].outcome is OpOutcome.OK
        assert results[1].outcome is OpOutcome.ERROR
        assert results[1].expected_bit == 0

    def test_zero_expected_bit_ok(self):
        """Holding a 0 the whole slot is OK for an expected 0."""
        pattern = write_pattern([0], initial_bit=0, cycle=10e-9,
                                wl_delay=2e-9, wl_width=4e-9)
        times = np.linspace(0.0, 10e-9, 501)
        wf = Waveform(times, {"q": np.zeros_like(times)})
        results = classify_operations(wf, pattern.schedule(), VDD)
        assert results[0].outcome is OpOutcome.OK


class TestValidationAndAggregation:
    def test_empty_schedule(self):
        wf = synthetic_waveform(1e-9, 1.0)
        with pytest.raises(AnalysisError):
            classify_operations(wf, [], VDD)

    def test_threshold_validation(self):
        with pytest.raises(AnalysisError):
            DetectorThresholds(valid_fraction=0.4)
        with pytest.raises(AnalysisError):
            DetectorThresholds(settle_allowance=-1.0)

    def test_count_outcomes(self):
        wf = synthetic_waveform(4e-9, VDD)
        results = classify_operations(wf, single_write_schedule(), VDD)
        counts = count_outcomes(results)
        assert counts == {"ok": 1, "slow": 0, "error": 0}
