"""Tests for test-pattern stimulus generation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sram.patterns import Operation, build_pattern_waveforms, write_pattern
from repro.sram.patterns import TestPattern as Pattern  # alias: pytest must not collect it

pytestmark = pytest.mark.tier1


class TestOperation:
    def test_write_needs_bit(self):
        with pytest.raises(SimulationError):
            Operation("write")
        with pytest.raises(SimulationError):
            Operation("write", 2)

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            Operation("erase")

    def test_read_and_hold(self):
        assert Operation("read").bit is None
        assert Operation("hold").bit is None


class TestPatternValidation:
    def test_validation(self):
        with pytest.raises(SimulationError):
            Pattern(operations=())
        with pytest.raises(SimulationError):
            Pattern(operations=(Operation("hold"),), initial_bit=2)
        with pytest.raises(SimulationError):
            Pattern(operations=(Operation("hold"),), cycle=-1.0)
        with pytest.raises(SimulationError):
            # WL pulse does not fit in the cycle.
            Pattern(operations=(Operation("hold"),), cycle=5e-9,
                        wl_delay=2e-9, wl_width=4e-9)

    def test_duration(self):
        pattern = write_pattern([1, 0, 1], cycle=10e-9)
        assert pattern.duration == pytest.approx(30e-9)

    def test_write_pattern_factory(self):
        pattern = write_pattern([1, 0])
        assert [op.kind for op in pattern.operations] == ["write", "write"]
        assert [op.bit for op in pattern.operations] == [1, 0]


class TestSchedule:
    def test_expected_bits_track_writes(self):
        pattern = write_pattern([1, 1, 0], initial_bit=0)
        schedule = pattern.schedule()
        assert [item.expected_bit for item in schedule] == [1, 1, 0]

    def test_reads_and_holds_keep_bit(self):
        pattern = Pattern(operations=(
            Operation("write", 1), Operation("read"), Operation("hold"),
            Operation("write", 0), Operation("read"),
        ))
        schedule = pattern.schedule()
        assert [item.expected_bit for item in schedule] == [1, 1, 1, 0, 0]

    def test_wl_windows_inside_slots(self):
        pattern = write_pattern([1, 0], cycle=10e-9, wl_delay=2e-9,
                                wl_width=4e-9)
        for item in pattern.schedule():
            assert item.t_start <= item.wl_on < item.wl_off <= item.t_end

    def test_hold_has_no_wl_pulse(self):
        pattern = Pattern(operations=(Operation("hold"),))
        item = pattern.schedule()[0]
        assert item.wl_on == item.wl_off == item.t_start


class TestWaveformBuilding:
    def test_bitline_levels_write_one(self):
        pattern = write_pattern([1], cycle=10e-9, wl_delay=2e-9)
        waves = build_pattern_waveforms(pattern, vdd=1.0)
        # After bitlines settle, BL=vdd and BLB=0 for a write-1.
        assert waves.bl(1e-9) == pytest.approx(1.0)
        assert waves.blb(1e-9) == pytest.approx(0.0)

    def test_bitline_levels_write_zero(self):
        pattern = write_pattern([0], cycle=10e-9, wl_delay=2e-9)
        waves = build_pattern_waveforms(pattern, vdd=1.0)
        assert waves.bl(1e-9) == pytest.approx(0.0)
        assert waves.blb(1e-9) == pytest.approx(1.0)

    def test_read_precharges_both(self):
        pattern = Pattern(operations=(Operation("read"),))
        waves = build_pattern_waveforms(pattern, vdd=1.0)
        item = waves.schedule[0]
        mid_wl = 0.5 * (item.wl_on + item.wl_off)
        assert waves.bl(mid_wl) == pytest.approx(1.0)
        assert waves.blb(mid_wl) == pytest.approx(1.0)
        assert waves.wl(mid_wl) == pytest.approx(1.0)

    def test_wl_low_outside_pulse(self):
        pattern = write_pattern([1, 0], cycle=10e-9, wl_delay=2e-9,
                                wl_width=4e-9)
        waves = build_pattern_waveforms(pattern, vdd=1.0)
        for item in waves.schedule:
            assert waves.wl(item.t_start + 0.5e-9) == pytest.approx(0.0)
            assert waves.wl(item.t_end - 0.5e-9) == pytest.approx(0.0)
            mid = 0.5 * (item.wl_on + item.wl_off)
            assert waves.wl(mid) == pytest.approx(1.0)

    def test_hold_keeps_everything_low(self):
        pattern = Pattern(operations=(Operation("hold"),))
        waves = build_pattern_waveforms(pattern, vdd=1.0)
        mid = pattern.cycle / 2
        assert waves.wl(mid) == 0.0
        assert waves.bl(mid) == 0.0
        assert waves.blb(mid) == 0.0

    def test_vdd_validation(self):
        with pytest.raises(SimulationError):
            build_pattern_waveforms(write_pattern([1]), vdd=0.0)

    def test_suggested_dt_resolves_edges(self):
        pattern = write_pattern([1], edge_time=0.2e-9)
        waves = build_pattern_waveforms(pattern, vdd=1.0)
        assert waves.suggested_dt <= pattern.edge_time / 2

    def test_multi_slot_sequence(self):
        """Bitlines follow the data slot by slot."""
        pattern = write_pattern([1, 0, 1], cycle=10e-9, wl_delay=2e-9)
        waves = build_pattern_waveforms(pattern, vdd=1.0)
        probe = [5e-9, 15e-9, 25e-9]
        assert [round(float(waves.bl(t))) for t in probe] == [1, 0, 1]
        assert [round(float(waves.blb(t))) for t in probe] == [0, 1, 0]
