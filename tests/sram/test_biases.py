"""Tests for per-transistor bias extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spice.transient import TransientOptions, simulate_transient
from repro.sram.biases import extract_biases
from repro.sram.cell import SramCellSpec, build_sram_cell
from repro.sram.patterns import build_pattern_waveforms, write_pattern

pytestmark = pytest.mark.tier1


@pytest.fixture(scope="module")
def write_run():
    """One clean write-1 transient shared by the tests."""
    cell = build_sram_cell(SramCellSpec())
    pattern = write_pattern([1], cycle=8e-9, wl_delay=2e-9, wl_width=3e-9)
    waves = build_pattern_waveforms(pattern, cell.vdd)
    cell.set_stimuli(waves.wl, waves.bl, waves.blb)
    waveform = simulate_transient(
        cell.circuit, waves.duration, waves.suggested_dt,
        initial_voltages=cell.initial_voltages(0),
        options=TransientOptions(record_every=2))
    return cell, waves, waveform


class TestExtraction:
    def test_all_transistors_covered(self, write_run):
        cell, __, waveform = write_run
        biases = extract_biases(cell, waveform)
        assert set(biases) == set(cell.transistors)
        for record in biases.values():
            assert record.times.shape == waveform.times.shape
            assert record.v_drive.shape == waveform.times.shape
            assert record.i_d.shape == waveform.times.shape

    def test_pass_gate_drive_follows_wordline(self, write_run):
        """M1's drive is zero before WL rises, spikes while the write is
        in flight, and collapses again once Q reaches BL (vgs -> 0 with
        both terminals high — no inversion layer, no trap capture)."""
        cell, waves, waveform = write_run
        biases = extract_biases(cell, waveform)
        item = waves.schedule[0]
        m1 = biases["M1"]
        before = np.abs(m1.v_drive[m1.times < item.wl_on - 0.5e-9])
        early = m1.v_drive[(m1.times >= item.wl_on)
                           & (m1.times < item.wl_on + 0.4e-9)]
        late = m1.v_drive[(m1.times > item.wl_off - 0.5e-9)
                          & (m1.times < item.wl_off)]
        assert before.max() < 0.15
        assert early.max() > 0.4 * cell.vdd
        assert late.max() < 0.3 * cell.vdd

    def test_m5_drive_is_q(self, write_run):
        """M5's gate is Q: after the write its drive is ~vdd."""
        cell, waves, waveform = write_run
        biases = extract_biases(cell, waveform)
        final_drive = biases["M5"].v_drive[-1]
        assert final_drive == pytest.approx(cell.vdd, abs=0.1)

    def test_pmos_drive_convention(self, write_run):
        """M4 (pullup driving Q, gate QB): on after the write-1, and its
        drive is reported positive."""
        cell, __, waveform = write_run
        biases = extract_biases(cell, waveform)
        assert biases["M4"].v_drive[-1] == pytest.approx(cell.vdd, abs=0.1)

    def test_pass_current_direction_flips_between_writes(self):
        """M1 carries bl->q current on a write-1 but q->bl on a write-0
        — the signed i_d must capture that."""
        cell = build_sram_cell(SramCellSpec())
        pattern = write_pattern([1, 0], cycle=8e-9, wl_delay=2e-9,
                                wl_width=3e-9)
        waves = build_pattern_waveforms(pattern, cell.vdd)
        cell.set_stimuli(waves.wl, waves.bl, waves.blb)
        waveform = simulate_transient(
            cell.circuit, waves.duration, waves.suggested_dt,
            initial_voltages=cell.initial_voltages(0),
            options=TransientOptions(record_every=2))
        m1 = extract_biases(cell, waveform)["M1"]
        first, second = waves.schedule
        in_first = (m1.times > first.wl_on) & (m1.times < first.wl_off)
        in_second = (m1.times > second.wl_on) & (m1.times < second.wl_off)
        # M1 drain is BL: write-1 discharges BL into Q => i_d > 0 (d->s);
        # write-0 pulls Q down through BL => i_d < 0.
        assert m1.i_d[in_first].max() > 1e-6
        assert m1.i_d[in_second].min() < -1e-6

    def test_peak_current_magnitude(self, write_run):
        cell, __, waveform = write_run
        biases = extract_biases(cell, waveform)
        # Pass gates carry tens of microamps during the write at 1 V.
        assert 1e-6 < biases["M1"].peak_current() < 1e-3

    def test_on_fraction(self, write_run):
        """M1's drive exceeds vdd/2 only during the brief write-in-flight
        phase (once Q = BL the overdrive is gone), M5's for most of the
        slot (its gate is Q, which is high after the write)."""
        cell, __, waveform = write_run
        biases = extract_biases(cell, waveform)
        m1_on = biases["M1"].on_fraction(0.5 * cell.vdd)
        m5_on = biases["M5"].on_fraction(0.5 * cell.vdd)
        assert 0.0 < m1_on < 0.2
        assert m5_on > 0.5
