"""Read-disturb prediction (paper footnote 2).

"RTN-induced SRAM read failures have also been reported [16].  SAMURAI
is capable of predicting these too" — the same methodology, with read
slots in the pattern, must (a) leave a healthy cell's stored bit intact
through reads, and (b) flag the read-upset when the cell is made
read-unstable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.methodology import MethodologyConfig, run_methodology
from repro.sram.cell import SramCellSpec
from repro.sram.detectors import OpOutcome
from repro.sram.margins import static_noise_margin
from repro.sram.patterns import Operation
from repro.sram.patterns import TestPattern as Pattern  # alias: pytest must not collect it

pytestmark = pytest.mark.tier1


def read_pattern() -> Pattern:
    """Write a 1, read it twice, write a 0, read it."""
    return Pattern(operations=(
        Operation("write", 1), Operation("read"), Operation("read"),
        Operation("write", 0), Operation("read"),
    ), cycle=5e-9, wl_delay=1e-9, wl_width=2e-9)


class TestHealthyCellReads:
    def test_reads_preserve_the_bit(self):
        result = run_methodology(
            read_pattern(), np.random.default_rng(3),
            spec=SramCellSpec(),
            config=MethodologyConfig(rtn_scale=1.0, record_every=2))
        assert all(r.outcome is OpOutcome.OK for r in result.clean_results)
        kinds = [r.kind for r in result.clean_results]
        assert kinds == ["write", "read", "read", "write", "read"]
        # The reads carry the expected stored bit forward.
        assert [r.expected_bit for r in result.clean_results] == \
            [1, 1, 1, 0, 0]


class TestReadDisturbBump:
    """With hard-driven bitlines (our read model), the disturb appears
    as the classic read *bump* on the low node — its size is set by the
    pass/pull-down ratio.  A full flip additionally needs floating
    bitline dynamics (sense-amp model), which this model deliberately
    bounds out: M2 clamps the high node for the whole read."""

    @staticmethod
    def read_bump(spec: SramCellSpec) -> float:
        pattern = Pattern(operations=(
            Operation("write", 0), Operation("read"),
        ), cycle=5e-9, wl_delay=1e-9, wl_width=2e-9)
        result = run_methodology(
            pattern, np.random.default_rng(3), spec=spec,
            config=MethodologyConfig(rtn_scale=0.0, record_every=2))
        read = pattern.schedule()[1]
        window = result.clean_waveform.window(read.wl_on, read.wl_off)
        return float(window["q"].max())

    def test_weak_cell_has_reduced_read_margin(self):
        weak = SramCellSpec(pulldown_factor=0.4, pass_factor=1.4,
                            node_capacitance=2e-15)
        snm_read = static_noise_margin(weak, mode="read", points=41)
        snm_healthy = static_noise_margin(SramCellSpec(), mode="read",
                                          points=41)
        assert snm_read < 0.6 * snm_healthy

    def test_bump_grows_as_beta_ratio_inverts(self):
        healthy = self.read_bump(SramCellSpec(node_capacitance=2e-15))
        weak = self.read_bump(SramCellSpec(
            pulldown_factor=0.4, pass_factor=1.4, node_capacitance=2e-15))
        very_weak = self.read_bump(SramCellSpec(
            pulldown_factor=0.15, pass_factor=2.5, node_capacitance=2e-15))
        assert healthy < weak < very_weak
        # The healthy cell's bump stays far from the trip point.
        assert healthy < 0.25 * SramCellSpec().supply

    def test_cell_recovers_after_the_read(self):
        """Even the grossly mis-sized cell recovers once WL falls — the
        hard-driven-bitline read bounds the disturb below a flip."""
        pattern = Pattern(operations=(
            Operation("write", 0), Operation("read"),
        ), cycle=5e-9, wl_delay=1e-9, wl_width=2e-9)
        result = run_methodology(
            pattern, np.random.default_rng(3),
            spec=SramCellSpec(pulldown_factor=0.15, pass_factor=2.5,
                              node_capacitance=2e-15),
            config=MethodologyConfig(rtn_scale=0.0, record_every=2))
        assert result.clean_results[1].outcome is OpOutcome.OK
        assert result.clean_waveform.final("q") < 0.05
