"""Tests for SNM and write-margin analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.sram.cell import SramCellSpec
from repro.sram.margins import (
    half_cell_vtc,
    static_noise_margin,
    wordline_write_margin,
)

pytestmark = pytest.mark.tier1


class TestVtc:
    def test_mode_validation(self):
        with pytest.raises(AnalysisError):
            half_cell_vtc(SramCellSpec(), mode="write")

    def test_hold_vtc_is_inverter(self):
        v_in, v_out = half_cell_vtc(SramCellSpec(), mode="hold", points=31)
        vdd = SramCellSpec().supply
        assert v_out[0] == pytest.approx(vdd, abs=0.02)
        assert v_out[-1] == pytest.approx(0.0, abs=0.02)
        assert np.all(np.diff(v_out) < 1e-6)  # monotone falling

    def test_read_vtc_degraded_low_level(self):
        """In read mode the pass gate pulls the low output up."""
        __, hold_out = half_cell_vtc(SramCellSpec(), mode="hold", points=31)
        __, read_out = half_cell_vtc(SramCellSpec(), mode="read", points=31)
        assert read_out[-1] > hold_out[-1] + 0.01


class TestSnm:
    def test_hold_snm_positive_and_plausible(self):
        spec = SramCellSpec()
        snm = static_noise_margin(spec, mode="hold", points=41)
        # A healthy 1 V cell holds with SNM of a few hundred millivolts.
        assert 0.1 < snm < 0.5 * spec.supply

    def test_read_snm_below_hold_snm(self):
        """The classic result: read disturbs shrink the margin."""
        spec = SramCellSpec()
        hold = static_noise_margin(spec, mode="hold", points=41)
        read = static_noise_margin(spec, mode="read", points=41)
        assert read < hold

    def test_snm_shrinks_with_supply(self):
        hi = static_noise_margin(SramCellSpec(vdd=1.0), points=41)
        lo = static_noise_margin(SramCellSpec(vdd=0.5), points=41)
        assert lo < hi


class TestWriteMargin:
    def test_margin_below_vdd(self):
        """The cell writes with some wordline underdrive to spare."""
        spec = SramCellSpec()
        margin = wordline_write_margin(spec, resolution=0.05)
        assert 0.2 < margin < spec.supply

    def test_low_supply_needs_relatively_more_wordline(self):
        """At low V_dd the required WL fraction of V_dd grows — the
        write margin collapses, which is where RTN bites (Fig. 2)."""
        nominal = SramCellSpec()
        scaled = SramCellSpec(vdd=0.5)
        frac_hi = wordline_write_margin(nominal, resolution=0.02) \
            / nominal.supply
        frac_lo = wordline_write_margin(scaled, resolution=0.02) \
            / scaled.supply
        assert frac_lo > frac_hi
