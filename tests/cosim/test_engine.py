"""Tests for the circuit-agnostic trap-coupled engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosim import TrapAttachment, run_trap_coupled
from repro.devices.mosfet import MosfetParams
from repro.devices.technology import TECH_90NM
from repro.errors import SimulationError
from repro.spice.circuit import Circuit
from repro.spice.elements import Capacitor, Mosfet, Resistor, VoltageSource
from repro.spice.sources import DC
from repro.traps.band import crossing_energy
from repro.traps.trap import Trap

pytestmark = pytest.mark.tier1


def fast_trap(v_cross: float = 0.5, y: float = 0.2e-9) -> Trap:
    return Trap(y_tr=y, e_tr=crossing_energy(v_cross, y, TECH_90NM))


def common_source_amp() -> Circuit:
    """A resistor-loaded common-source stage biased mid-swing."""
    circuit = Circuit("cs-amp")
    VoltageSource("VDD", circuit, "vdd", "0", DC(1.0))
    VoltageSource("VG", circuit, "g", "0", DC(0.55))
    Resistor("RL", circuit, "vdd", "d", 8e3)
    Mosfet("M1", circuit, "d", "g", "0", "0",
           MosfetParams.nominal(TECH_90NM, "n"))
    Capacitor("CL", circuit, "d", "0", 50e-15)
    return circuit


class TestValidation:
    def test_attachment_needs_traps(self):
        with pytest.raises(SimulationError):
            TrapAttachment("M1", traps=())

    def test_attachment_scale(self):
        with pytest.raises(SimulationError):
            TrapAttachment("M1", traps=(fast_trap(),), rtn_scale=-1.0)

    def test_needs_attachments(self, rng):
        with pytest.raises(SimulationError):
            run_trap_coupled(common_source_amp(), [], 1e-8, 1e-11, rng)

    def test_duplicate_attachment(self, rng):
        atts = [TrapAttachment("M1", (fast_trap(),)),
                TrapAttachment("M1", (fast_trap(),))]
        with pytest.raises(SimulationError):
            run_trap_coupled(common_source_amp(), atts, 1e-8, 1e-11, rng)

    def test_non_mosfet_target(self, rng):
        atts = [TrapAttachment("RL", (fast_trap(),))]
        with pytest.raises(SimulationError):
            run_trap_coupled(common_source_amp(), atts, 1e-8, 1e-11, rng)

    def test_sources_removed(self, rng):
        circuit = common_source_amp()
        before = len(circuit.elements)
        run_trap_coupled(circuit,
                         [TrapAttachment("M1", (fast_trap(),))],
                         5e-9, 1e-11, rng,
                         initial_voltages={"vdd": 1.0, "d": 0.6},
                         record_every=4)
        assert len(circuit.elements) == before


class TestAmplifierRtn:
    def test_output_carries_telegraph(self, rng):
        """A big accelerated trap in the amplifying device makes the
        output voltage two-level — RTN amplified by the stage gain."""
        circuit = common_source_amp()
        atts = [TrapAttachment("M1", (fast_trap(0.5),), rtn_scale=300.0)]
        result = run_trap_coupled(
            circuit, atts, 4e-8, 2e-11, rng,
            initial_voltages={"vdd": 1.0, "d": 0.6}, record_every=2)
        traces = result.occupancies["M1"]
        assert len(traces) == 1
        assert traces[0].n_transitions >= 2
        # Output dwells at two distinguishable levels after settling.
        wf = result.waveform
        settled = wf.times > 5e-9
        v_out = wf["d"][settled]
        filled = traces[0].sample(wf.times[settled]).astype(bool)
        if filled.any() and (~filled).any():
            v_filled = v_out[filled].mean()
            v_empty = v_out[~filled].mean()
            # Less channel current while filled -> output rises.
            assert v_filled > v_empty + 0.001

    def test_zero_scale_leaves_circuit_untouched(self, rng_factory):
        from repro.spice.transient import TransientOptions, simulate_transient
        circuit_a = common_source_amp()
        atts = [TrapAttachment("M1", (fast_trap(),), rtn_scale=0.0)]
        coupled = run_trap_coupled(
            circuit_a, atts, 5e-9, 1e-11, rng_factory(1),
            initial_voltages={"vdd": 1.0, "d": 0.6}, record_every=2)
        circuit_b = common_source_amp()
        plain = simulate_transient(
            circuit_b, 5e-9, 1e-11,
            initial_voltages={"vdd": 1.0, "d": 0.6},
            options=TransientOptions(record_every=2))
        assert np.allclose(coupled.waveform["d"], plain["d"], atol=1e-9)

    def test_total_transitions_helper(self, rng):
        circuit = common_source_amp()
        atts = [TrapAttachment("M1", (fast_trap(), fast_trap(0.45)))]
        result = run_trap_coupled(
            circuit, atts, 2e-8, 2e-11, rng,
            initial_voltages={"vdd": 1.0, "d": 0.6}, record_every=4)
        assert result.total_transitions() == sum(
            t.n_transitions for t in result.occupancies["M1"])
