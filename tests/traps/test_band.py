"""Tests for the surface-potential and trap-energy band model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import thermal_voltage
from repro.devices.technology import TECH_22NM, TECH_90NM
from repro.errors import ModelError
from repro.traps.band import (
    body_factor,
    crossing_energy,
    oxide_voltage,
    surface_potential,
    trap_energy_offset,
)
from repro.traps.trap import Trap

pytestmark = pytest.mark.tier1


class TestSurfacePotential:
    def test_clamps_below_flatband(self):
        assert surface_potential(TECH_90NM.v_fb - 0.5, TECH_90NM) == 0.0
        assert surface_potential(TECH_90NM.v_fb, TECH_90NM) == 0.0

    def test_solves_implicit_equation(self):
        """The returned psi_s satisfies the charge-sheet equation."""
        tech = TECH_90NM
        v_gb = 0.7
        psi = surface_potential(v_gb, tech)
        v_t = thermal_voltage(tech.temperature)
        charge = psi + v_t * np.exp((psi - 2 * tech.phi_f) / v_t)
        residual = psi + body_factor(tech) * np.sqrt(charge) - (v_gb - tech.v_fb)
        assert abs(residual) < 1e-9

    def test_monotone_in_bias(self):
        v = np.linspace(-0.5, 1.5, 100)
        psi = surface_potential(v, TECH_90NM)
        assert np.all(np.diff(psi) >= 0.0)

    def test_saturates_near_strong_inversion(self):
        """psi_s pins close to 2 phi_F + a few V_t in strong inversion."""
        tech = TECH_90NM
        psi_1 = surface_potential(tech.vdd, tech)
        psi_2 = surface_potential(tech.vdd + 0.5, tech)
        assert psi_2 - psi_1 < 0.1
        assert psi_1 > 2 * tech.phi_f

    def test_vectorised_matches_scalar(self):
        v = np.array([0.0, 0.4, 0.9])
        vec = surface_potential(v, TECH_90NM)
        scal = [surface_potential(x, TECH_90NM) for x in v]
        assert np.allclose(vec, scal)

    @settings(max_examples=50, deadline=None)
    @given(v_gb=st.floats(min_value=-1.0, max_value=2.0))
    def test_property_bounded_by_drive(self, v_gb):
        """0 <= psi_s <= V_gb - V_fb always."""
        psi = surface_potential(v_gb, TECH_90NM)
        assert psi >= 0.0
        assert psi <= max(0.0, v_gb - TECH_90NM.v_fb) + 1e-12


class TestOxideVoltage:
    def test_positive_above_flatband(self):
        assert oxide_voltage(0.5, TECH_90NM) > 0.0

    def test_increases_with_bias(self):
        v = np.linspace(0.0, 1.2, 30)
        vox = oxide_voltage(v, TECH_90NM)
        assert np.all(np.diff(vox) > 0.0)


class TestTrapEnergyOffset:
    def test_decreases_with_bias(self):
        """Higher gate bias pulls E_T below E_F (trap wants to fill)."""
        trap = Trap(y_tr=1.0e-9, e_tr=1.0)
        v = np.linspace(0.0, 1.0, 50)
        offset = trap_energy_offset(v, trap, TECH_90NM)
        assert np.all(np.diff(offset) < 0.0)

    def test_deeper_trap_couples_more(self):
        """dE/dVgs is stronger for a trap closer to the gate."""
        shallow = Trap(y_tr=0.2e-9, e_tr=1.0)
        deep = Trap(y_tr=1.8e-9, e_tr=1.0)
        swing_shallow = (trap_energy_offset(0.0, shallow, TECH_90NM)
                         - trap_energy_offset(1.0, shallow, TECH_90NM))
        swing_deep = (trap_energy_offset(0.0, deep, TECH_90NM)
                      - trap_energy_offset(1.0, deep, TECH_90NM))
        assert swing_deep > swing_shallow

    def test_rejects_trap_outside_oxide(self):
        with pytest.raises(ModelError):
            trap_energy_offset(0.5, Trap(y_tr=5e-9, e_tr=1.0), TECH_90NM)

    def test_offset_at_crossing_energy_is_zero(self):
        y = 1.2e-9
        v_gs = 0.6
        e_cross = crossing_energy(v_gs, y, TECH_90NM)
        trap = Trap(y_tr=y, e_tr=e_cross)
        assert trap_energy_offset(v_gs, trap, TECH_90NM) == \
            pytest.approx(0.0, abs=1e-9)


class TestCrossingEnergy:
    def test_increases_with_bias(self):
        v = np.linspace(0.0, 1.0, 20)
        e = crossing_energy(v, 1.0e-9, TECH_90NM)
        assert np.all(np.diff(e) > 0.0)

    def test_window_spans_reasonable_band(self):
        """The 0..Vdd crossing window is a fraction of an eV wide."""
        lo = crossing_energy(0.0, 1.0e-9, TECH_90NM)
        hi = crossing_energy(TECH_90NM.vdd, 1.0e-9, TECH_90NM)
        assert 0.05 < hi - lo < 1.5

    def test_depth_validation(self):
        with pytest.raises(ModelError):
            crossing_energy(0.5, 0.0, TECH_90NM)
        with pytest.raises(ModelError):
            crossing_energy(0.5, 1e-8, TECH_90NM)

    def test_other_technology(self):
        # Same machinery must hold for the thinnest-oxide card.
        lo = crossing_energy(0.0, 0.5e-9, TECH_22NM)
        hi = crossing_energy(TECH_22NM.vdd, 0.5e-9, TECH_22NM)
        assert hi > lo
