"""Tests for the statistical trap profiler."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.devices.mosfet import MosfetParams
from repro.devices.technology import TECH_22NM, TECH_90NM, TECH_180NM
from repro.errors import ModelError
from repro.traps.band import crossing_energy
from repro.traps.profiling import TrapProfiler
from repro.traps.propensity import propensity_sum

pytestmark = pytest.mark.tier1


class TestValidation:
    def test_rejects_bad_margin(self):
        with pytest.raises(ModelError):
            TrapProfiler(TECH_90NM, energy_margin=-0.1)

    def test_rejects_bad_depth_fraction(self):
        with pytest.raises(ModelError):
            TrapProfiler(TECH_90NM, depth_fraction_min=0.0)
        with pytest.raises(ModelError):
            TrapProfiler(TECH_90NM, depth_fraction_min=1.0)

    def test_rejects_bad_max_rate(self):
        with pytest.raises(ModelError):
            TrapProfiler(TECH_90NM, max_rate=0.0)

    def test_rejects_negative_count(self, rng):
        with pytest.raises(ModelError):
            TrapProfiler(TECH_90NM).sample_fixed_count(rng, -1)

    def test_infeasible_depth_constraints(self):
        profiler = TrapProfiler(TECH_90NM, max_rate=1e-3)
        with pytest.raises(ModelError):
            profiler.depth_bounds()


class TestSampling:
    def test_poisson_mean_tracks_density(self, rng):
        profiler = TrapProfiler(TECH_180NM)
        nominal = MosfetParams.nominal(TECH_180NM)
        counts = [len(profiler.sample(rng, nominal.width, nominal.length))
                  for _ in range(20)]
        expected = profiler.expected_count(nominal.width, nominal.length)
        assert np.mean(counts) == pytest.approx(expected, rel=0.1)

    def test_scaled_node_has_few_traps(self, rng):
        profiler = TrapProfiler(TECH_22NM)
        nominal = MosfetParams.nominal(TECH_22NM)
        counts = [len(profiler.sample(rng, nominal.width, nominal.length))
                  for _ in range(50)]
        assert np.mean(counts) < 10.0  # "only about 5-10 traps are active"

    def test_depths_within_bounds(self, rng):
        profiler = TrapProfiler(TECH_90NM)
        traps = profiler.sample_fixed_count(rng, 200)
        y_min, y_max = profiler.depth_bounds()
        for trap in traps:
            assert y_min <= trap.y_tr <= y_max

    def test_energies_within_active_window(self, rng):
        profiler = TrapProfiler(TECH_90NM)
        traps = profiler.sample_fixed_count(rng, 100)
        for trap in traps:
            e_lo, e_hi = profiler.energy_bounds(trap.y_tr)
            assert e_lo <= trap.e_tr <= e_hi

    def test_max_rate_cap_enforced(self, rng):
        profiler = TrapProfiler(TECH_90NM, max_rate=1e6)
        traps = profiler.sample_fixed_count(rng, 100)
        for trap in traps:
            assert propensity_sum(trap, TECH_90NM) <= 1e6 * (1 + 1e-9)

    def test_labels(self, rng):
        traps = TrapProfiler(TECH_90NM).sample_fixed_count(
            rng, 3, label_prefix="m1_t")
        assert [t.label for t in traps] == ["m1_t0", "m1_t1", "m1_t2"]

    def test_reproducible(self, rng_factory):
        profiler = TrapProfiler(TECH_90NM)
        a = profiler.sample(rng_factory(5), 2e-7, 1e-7)
        b = profiler.sample(rng_factory(5), 2e-7, 1e-7)
        assert [(t.y_tr, t.e_tr) for t in a] == [(t.y_tr, t.e_tr) for t in b]

    def test_time_constants_span_decades(self, rng):
        """Uniform depth must spread propensity sums over many decades
        (the precondition for 1/f superposition in Fig. 3 left)."""
        profiler = TrapProfiler(TECH_180NM)
        traps = profiler.sample_fixed_count(rng, 500)
        rates = np.array([propensity_sum(t, TECH_180NM) for t in traps])
        assert np.log10(rates.max() / rates.min()) > 6.0


class TestInitialStates:
    def test_low_bias_mostly_empty(self, rng):
        """At v_gs = 0 the sampled population is mostly above E_F."""
        profiler = TrapProfiler(TECH_90NM, energy_margin=0.0)
        traps = profiler.sample_fixed_count(rng, 300)
        states = profiler.initial_states(rng, traps, 0.0)
        assert np.mean(states) < 0.3

    def test_high_bias_mostly_filled(self, rng):
        profiler = TrapProfiler(TECH_90NM, energy_margin=0.0)
        traps = profiler.sample_fixed_count(rng, 300)
        states = profiler.initial_states(rng, traps, TECH_90NM.vdd)
        assert np.mean(states) > 0.7

    def test_states_are_binary(self, rng):
        profiler = TrapProfiler(TECH_90NM)
        traps = profiler.sample_fixed_count(rng, 50)
        states = profiler.initial_states(rng, traps, 0.5)
        assert set(states) <= {0, 1}


class TestSummary:
    def test_empty_population(self):
        assert TrapProfiler(TECH_90NM).summarise([])["count"] == 0

    def test_summary_fields(self, rng):
        profiler = TrapProfiler(TECH_90NM)
        traps = profiler.sample_fixed_count(rng, 10)
        summary = profiler.summarise(traps)
        assert summary["count"] == 10
        assert summary["rate_min"] <= summary["rate_max"]
        assert summary["depth_min"] <= summary["depth_max"]


class TestEnergyWindows:
    def test_window_widens_with_margin(self):
        tight = TrapProfiler(TECH_90NM, energy_margin=0.0)
        wide = TrapProfiler(TECH_90NM, energy_margin=0.3)
        lo_t, hi_t = tight.energy_bounds(1.0e-9)
        lo_w, hi_w = wide.energy_bounds(1.0e-9)
        assert lo_w == pytest.approx(lo_t - 0.3)
        assert hi_w == pytest.approx(hi_t + 0.3)

    def test_window_matches_crossings(self):
        profiler = TrapProfiler(TECH_90NM, energy_margin=0.0)
        y = 1.0e-9
        lo, hi = profiler.energy_bounds(y)
        assert lo == pytest.approx(crossing_energy(0.0, y, TECH_90NM))
        assert hi == pytest.approx(crossing_energy(TECH_90NM.vdd, y, TECH_90NM))
