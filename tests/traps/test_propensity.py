"""Tests for paper Eqs. (1)-(2): trap propensities from bias."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.technology import TECH_90NM
from repro.errors import ModelError
from repro.traps.band import crossing_energy
from repro.traps.propensity import (
    equilibrium_occupancy,
    log_beta_from_bias,
    propensity_sum,
    rates_from_bias,
    trap_propensity,
)
from repro.traps.trap import Trap

pytestmark = pytest.mark.tier1

depths = st.floats(min_value=0.1e-9, max_value=2.0e-9)
energies = st.floats(min_value=0.0, max_value=2.5)
biases = st.floats(min_value=0.0, max_value=1.2)


class TestPropensitySum:
    def test_eq1_formula(self):
        trap = Trap(y_tr=1.0e-9, e_tr=1.0)
        tech = TECH_90NM
        expected = 1.0 / (tech.tau0 * math.exp(tech.gamma_tunnel * trap.y_tr))
        assert propensity_sum(trap, tech) == pytest.approx(expected)

    def test_deeper_traps_are_slower(self):
        shallow = propensity_sum(Trap(y_tr=0.5e-9, e_tr=1.0), TECH_90NM)
        deep = propensity_sum(Trap(y_tr=1.5e-9, e_tr=1.0), TECH_90NM)
        assert shallow / deep == pytest.approx(math.exp(1e10 * 1.0e-9), rel=1e-6)

    def test_rejects_trap_outside_oxide(self):
        with pytest.raises(ModelError):
            propensity_sum(Trap(y_tr=3e-9, e_tr=1.0), TECH_90NM)

    def test_trap_validation(self):
        with pytest.raises(ModelError):
            Trap(y_tr=-1e-9, e_tr=1.0)
        with pytest.raises(ModelError):
            Trap(y_tr=1e-9, e_tr=1.0, degeneracy=0.0)


class TestRatesFromBias:
    @settings(max_examples=60, deadline=None)
    @given(y_tr=depths, e_tr=energies, v_gs=biases)
    def test_property_sum_is_bias_independent(self, y_tr, e_tr, v_gs):
        """Paper Eq. 1: the rate sum never depends on the bias."""
        trap = Trap(y_tr=y_tr, e_tr=e_tr)
        lam_c, lam_e = rates_from_bias(v_gs, trap, TECH_90NM)
        assert lam_c + lam_e == pytest.approx(
            propensity_sum(trap, TECH_90NM), rel=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(y_tr=depths, e_tr=energies, v_gs=biases)
    def test_property_ratio_is_beta(self, y_tr, e_tr, v_gs):
        """Paper Eq. 2: lambda_e/lambda_c == g exp((E_T-E_F)/kT)."""
        trap = Trap(y_tr=y_tr, e_tr=e_tr)
        lam_c, lam_e = rates_from_bias(v_gs, trap, TECH_90NM)
        log_beta = log_beta_from_bias(v_gs, trap, TECH_90NM)
        if abs(log_beta) < 500:  # both rates representable
            if lam_c > 0 and lam_e > 0:
                assert math.log(lam_e / lam_c) == pytest.approx(
                    log_beta, abs=1e-6)

    def test_gate_high_fills_trap(self):
        """Capture dominates at high V_gs, emission at low V_gs."""
        tech = TECH_90NM
        y = 1.2e-9
        trap = Trap(y_tr=y, e_tr=crossing_energy(0.5 * tech.vdd, y, tech))
        lam_c_hi, lam_e_hi = rates_from_bias(tech.vdd, trap, tech)
        lam_c_lo, lam_e_lo = rates_from_bias(0.0, trap, tech)
        assert lam_c_hi > lam_e_hi
        assert lam_c_lo < lam_e_lo

    def test_degeneracy_shifts_balance(self):
        tech = TECH_90NM
        y = 1.0e-9
        e = crossing_energy(0.5, y, tech)
        plain = Trap(y_tr=y, e_tr=e)
        degenerate = Trap(y_tr=y, e_tr=e, degeneracy=4.0)
        __, lam_e_plain = rates_from_bias(0.5, plain, tech)
        __, lam_e_deg = rates_from_bias(0.5, degenerate, tech)
        assert lam_e_deg > lam_e_plain

    def test_vectorised(self):
        trap = Trap(y_tr=1.0e-9, e_tr=1.0)
        v = np.linspace(0.0, 1.0, 7)
        lam_c, lam_e = rates_from_bias(v, trap, TECH_90NM)
        assert lam_c.shape == v.shape
        assert np.allclose(lam_c + lam_e, propensity_sum(trap, TECH_90NM))

    def test_no_overflow_at_extreme_offsets(self):
        """Very shallow/deep energies must not produce inf/nan."""
        trap_hi = Trap(y_tr=1.0e-9, e_tr=10.0)
        trap_lo = Trap(y_tr=1.0e-9, e_tr=-10.0)
        for trap in (trap_hi, trap_lo):
            lam_c, lam_e = rates_from_bias(0.5, trap, TECH_90NM)
            assert np.isfinite(lam_c) and np.isfinite(lam_e)


class TestEquilibriumOccupancy:
    def test_half_at_crossing(self):
        tech = TECH_90NM
        y = 1.0e-9
        v = 0.6
        trap = Trap(y_tr=y, e_tr=crossing_energy(v, y, tech))
        assert equilibrium_occupancy(v, trap, tech) == pytest.approx(0.5, abs=1e-6)

    def test_monotone_in_bias(self):
        trap = Trap(y_tr=1.0e-9, e_tr=1.0)
        v = np.linspace(0.0, 1.2, 40)
        occ = equilibrium_occupancy(v, trap, TECH_90NM)
        assert np.all(np.diff(occ) >= 0.0)
        assert occ[0] < 0.5 < occ[-1] or occ[-1] <= 0.5  # fills with bias


class TestTrapPropensityFactory:
    def test_bound_equals_eq1_sum(self):
        """The kernel bound is the paper's tight lambda*."""
        tech = TECH_90NM
        trap = Trap(y_tr=1.2e-9, e_tr=crossing_energy(0.5, 1.2e-9, tech))
        times = np.linspace(0.0, 1e-6, 101)
        v_gs = 0.5 + 0.5 * np.sin(2 * np.pi * 5e6 * times)
        prop = trap_propensity(trap, tech, times, v_gs)
        total = propensity_sum(trap, tech)
        assert prop.rate_bound() <= total * (1.0 + 1e-9)
        assert prop.rate_bound() >= 0.5 * total

    def test_propensity_tracks_bias(self):
        tech = TECH_90NM
        trap = Trap(y_tr=1.2e-9, e_tr=crossing_energy(0.5, 1.2e-9, tech))
        times = np.array([0.0, 1e-6])
        prop_hi = trap_propensity(trap, tech, times, np.array([1.0, 1.0]))
        prop_lo = trap_propensity(trap, tech, times, np.array([0.0, 0.0]))
        assert prop_hi.capture(0.5e-6) > prop_lo.capture(0.5e-6)
        assert prop_hi.emission(0.5e-6) < prop_lo.emission(0.5e-6)
