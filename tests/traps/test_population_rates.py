"""Tests for the vectorised population-rate fast path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.technology import TECH_90NM
from repro.errors import ModelError
from repro.traps.propensity import rates_for_population, rates_from_bias
from repro.traps.trap import Trap

pytestmark = pytest.mark.tier1


class TestPopulationRates:
    def test_empty_population(self):
        lam_c, lam_e = rates_for_population(0.5, [], TECH_90NM)
        assert lam_c.size == 0 and lam_e.size == 0

    def test_matches_scalar_path(self, rng):
        traps = [Trap(y_tr=float(rng.uniform(0.1e-9, 1.9e-9)),
                      e_tr=float(rng.uniform(0.5, 1.5)),
                      degeneracy=float(rng.uniform(1.0, 4.0)))
                 for _ in range(20)]
        for v_gs in (0.0, 0.4, 0.8, 1.0):
            lam_c, lam_e = rates_for_population(v_gs, traps, TECH_90NM)
            for index, trap in enumerate(traps):
                sc, se = rates_from_bias(v_gs, trap, TECH_90NM)
                assert lam_c[index] == pytest.approx(sc, rel=1e-9, abs=1e-12)
                assert lam_e[index] == pytest.approx(se, rel=1e-9, abs=1e-12)

    def test_depth_validation(self):
        with pytest.raises(ModelError):
            rates_for_population(0.5, [Trap(y_tr=5e-9, e_tr=1.0)],
                                 TECH_90NM)

    @settings(max_examples=30, deadline=None)
    @given(v_gs=st.floats(min_value=0.0, max_value=1.2),
           y=st.floats(min_value=0.1e-9, max_value=1.9e-9),
           e=st.floats(min_value=0.0, max_value=2.0))
    def test_property_sum_preserved(self, v_gs, y, e):
        """The population path preserves the Eq.-1 constant sum."""
        trap = Trap(y_tr=y, e_tr=e)
        lam_c, lam_e = rates_for_population(v_gs, [trap], TECH_90NM)
        from repro.traps.propensity import propensity_sum
        assert lam_c[0] + lam_e[0] == pytest.approx(
            propensity_sum(trap, TECH_90NM), rel=1e-9)
