"""Tests for the Lorentzian and 1/f spectral fits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fitting import (
    fit_lorentzian,
    fit_one_over_f,
    log_rms_error,
)
from repro.errors import AnalysisError
from repro.markov.analytic import lorentzian_psd, superposed_lorentzian_psd

pytestmark = pytest.mark.tier1


class TestLogRmsError:
    def test_zero_for_identical(self):
        s = np.array([1.0, 2.0, 3.0])
        assert log_rms_error(s, s) == 0.0

    def test_decade_offset(self):
        s = np.array([1.0, 1.0])
        assert log_rms_error(s, 10 * s) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            log_rms_error(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(AnalysisError):
            log_rms_error(np.array([1.0, -1.0]), np.array([1.0, 1.0]))


class TestOneOverFFit:
    def test_recovers_exact_one_over_f(self):
        f = np.logspace(0, 4, 50)
        s = 3e-12 / f
        fit = fit_one_over_f(f, s)
        assert fit.parameters["amplitude"] == pytest.approx(3e-12, rel=1e-6)
        assert fit.log_rms < 1e-9

    def test_poor_fit_for_single_lorentzian(self):
        """A lone Lorentzian is NOT 1/f: plateau then 1/f^2."""
        f = np.logspace(0, 5, 60)
        s = lorentzian_psd(f, 500.0, 500.0, 1e-6)
        fit = fit_one_over_f(f, s)
        assert fit.log_rms > 0.4

    def test_good_fit_for_many_decade_spread_lorentzians(self):
        """Superposed Lorentzians with log-uniform corners -> 1/f."""
        rng = np.random.default_rng(3)
        rates = 10.0 ** rng.uniform(0.0, 7.0, size=400)
        f = np.logspace(1.0, 5.0, 60)
        s = superposed_lorentzian_psd(
            f, rates / 2, rates / 2, np.full(rates.size, 1e-9))
        fit = fit_one_over_f(f, s)
        assert fit.log_rms < 0.15

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fit_one_over_f(np.array([0.0, 1.0, 2.0, 3.0]), np.ones(4))
        with pytest.raises(AnalysisError):
            fit_one_over_f(np.ones(3), np.ones(3))


class TestLorentzianFit:
    def test_recovers_parameters(self):
        f = np.logspace(0, 5, 80)
        lam_c, lam_e, d_i = 300.0, 700.0, 1e-6
        s = lorentzian_psd(f, lam_c, lam_e, d_i)
        fit = fit_lorentzian(f, s)
        total = lam_c + lam_e
        assert fit.parameters["corner"] == pytest.approx(
            total / (2 * np.pi), rel=0.01)
        assert fit.parameters["plateau"] == pytest.approx(
            lorentzian_psd(0.0, lam_c, lam_e, d_i), rel=0.01)
        assert fit.log_rms < 1e-4

    def test_robust_to_noise(self):
        rng = np.random.default_rng(11)
        f = np.logspace(0, 5, 80)
        s = lorentzian_psd(f, 500.0, 500.0, 1e-6)
        noisy = s * 10 ** rng.normal(0.0, 0.1, size=s.size)
        fit = fit_lorentzian(f, noisy)
        assert fit.parameters["corner"] == pytest.approx(
            1000.0 / (2 * np.pi), rel=0.3)

    def test_model_matches_shape(self):
        f = np.logspace(0, 4, 40)
        s = lorentzian_psd(f, 100.0, 100.0, 1.0)
        fit = fit_lorentzian(f, s)
        assert fit.model.shape == f.shape
