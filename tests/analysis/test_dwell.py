"""Tests for dwell-time statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.dwell import (
    exponentiality_pvalue,
    summarise_dwells,
)
from repro.errors import AnalysisError
from repro.markov.gillespie import simulate_constant
from repro.markov.occupancy import OccupancyTrace

pytestmark = pytest.mark.tier1


class TestExponentialityPvalue:
    def test_accepts_exponential_sample(self, rng):
        dwells = rng.exponential(scale=2.0, size=5000)
        assert exponentiality_pvalue(dwells) > 0.01

    def test_rejects_uniform_sample(self, rng):
        dwells = rng.uniform(1.0, 2.0, size=5000)
        assert exponentiality_pvalue(dwells) < 1e-6

    def test_validation(self):
        with pytest.raises(AnalysisError):
            exponentiality_pvalue(np.ones(3))
        with pytest.raises(AnalysisError):
            exponentiality_pvalue(np.array([1.0] * 7 + [-1.0]))


class TestSummarise:
    def test_matches_known_rates(self, rng):
        lam_c, lam_e = 150.0, 50.0
        trace = simulate_constant(lam_c, lam_e, 0.0, 200.0, rng)
        low = summarise_dwells(trace, 0)
        high = summarise_dwells(trace, 1)
        assert low.implied_rate == pytest.approx(lam_c, rel=0.1)
        assert high.implied_rate == pytest.approx(lam_e, rel=0.1)
        assert low.ks_pvalue > 1e-3
        assert high.ks_pvalue > 1e-3
        assert low.count > 1000

    def test_empty_state(self):
        trace = OccupancyTrace.constant(0.0, 1.0, 0)
        summary = summarise_dwells(trace, 1)
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert math.isnan(summary.implied_rate)

    def test_few_dwells_nan_pvalue(self):
        trace = OccupancyTrace.from_transitions(
            0.0, 10.0, 0, np.array([1.0, 2.0, 3.0]))
        summary = summarise_dwells(trace, 1)
        assert summary.count == 1
        assert math.isnan(summary.ks_pvalue)
