"""Tests for autocorrelation estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.autocorr import autocorrelation, autocovariance
from repro.errors import AnalysisError
from repro.markov.analytic import stationary_autocorrelation
from repro.markov.gillespie import simulate_constant

pytestmark = pytest.mark.tier1


class TestInterface:
    def test_rejects_short_trace(self):
        with pytest.raises(AnalysisError):
            autocorrelation(np.zeros(3), 1.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(AnalysisError):
            autocorrelation(np.zeros(100), 0.0)

    def test_rejects_bad_max_lag(self):
        with pytest.raises(AnalysisError):
            autocorrelation(np.zeros(100), 1.0, max_lag=100)
        with pytest.raises(AnalysisError):
            autocorrelation(np.zeros(100), 1.0, max_lag=0)

    def test_lag_grid(self):
        lags, r = autocorrelation(np.random.default_rng(0).normal(size=64),
                                  dt=0.5, max_lag=10)
        assert lags.tolist() == [0.5 * k for k in range(11)]
        assert r.shape == (11,)


class TestKnownSignals:
    def test_constant_signal(self):
        """R(tau) of a constant c is c^2 at every lag (biased taper aside)."""
        x = np.full(1000, 3.0)
        lags, r = autocorrelation(x, 1.0, max_lag=10)
        # Biased estimator: R[k] = c^2 (N-k)/N.
        expected = 9.0 * (1000 - np.arange(11)) / 1000
        assert np.allclose(r, expected)

    def test_white_noise_decorrelates(self):
        rng = np.random.default_rng(42)
        x = rng.normal(size=200_000)
        lags, r = autocorrelation(x, 1.0, max_lag=20)
        assert r[0] == pytest.approx(1.0, abs=0.02)
        assert np.max(np.abs(r[1:])) < 0.02

    def test_autocovariance_removes_mean(self):
        rng = np.random.default_rng(1)
        x = 5.0 + rng.normal(size=50_000)
        __, c = autocovariance(x, 1.0, max_lag=10)
        assert c[0] == pytest.approx(1.0, abs=0.05)
        assert abs(c[5]) < 0.05

    def test_cosine_signal(self):
        """R of cos(w t) is 0.5 cos(w tau)."""
        dt = 0.01
        t = np.arange(100_000) * dt
        x = np.cos(2 * np.pi * 5.0 * t)
        lags, r = autocorrelation(x, dt, max_lag=50)
        expected = 0.5 * np.cos(2 * np.pi * 5.0 * lags)
        assert np.max(np.abs(r - expected)) < 0.01


class TestAgainstAnalyticRtn:
    def test_matches_paper_closed_form(self, rng):
        """The Fig. 7(a)-(c) check as a unit test: the estimated R(tau)
        of a stationary telegraph trace matches the closed form."""
        lam_c, lam_e, delta_i = 400.0, 200.0, 1.0
        trace = simulate_constant(lam_c, lam_e, 0.0, 100.0, rng)
        dt = 1e-4
        grid = np.arange(0.0, 100.0, dt)
        samples = delta_i * trace.sample(grid).astype(float)
        lags, r_est = autocorrelation(samples, dt, max_lag=200)
        r_true = stationary_autocorrelation(lags, lam_c, lam_e, delta_i)
        assert np.max(np.abs(r_est - r_true)) < 0.05 * r_true[0]
