"""Tests for PSD estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.autocorr import autocovariance
from repro.analysis.psd import periodogram_psd, psd_from_autocovariance, welch_psd
from repro.errors import AnalysisError
from repro.markov.analytic import (
    lorentzian_corner_frequency,
    lorentzian_psd,
    stationary_autocovariance,
)
from repro.markov.gillespie import simulate_constant

pytestmark = pytest.mark.tier1


class TestInterface:
    def test_welch_rejects_short(self):
        with pytest.raises(AnalysisError):
            welch_psd(np.zeros(8), 1.0)

    def test_welch_rejects_bad_dt(self):
        with pytest.raises(AnalysisError):
            welch_psd(np.zeros(100), -1.0)

    def test_periodogram_rejects_short(self):
        with pytest.raises(AnalysisError):
            periodogram_psd(np.zeros(4), 1.0)

    def test_no_dc_bin(self):
        rng = np.random.default_rng(0)
        f, s = welch_psd(rng.normal(size=4096), 1.0)
        assert f[0] > 0.0
        f, s = periodogram_psd(rng.normal(size=4096), 1.0)
        assert f[0] > 0.0

    def test_psd_from_cov_validation(self):
        freq = np.logspace(0, 2, 10)
        with pytest.raises(AnalysisError):
            psd_from_autocovariance(np.array([0.0, 1.0]), np.array([1.0, 0.5]),
                                    freq)
        with pytest.raises(AnalysisError):
            psd_from_autocovariance(np.array([1.0, 2.0, 3.0, 4.0]),
                                    np.ones(4), freq)


class TestWhiteNoise:
    def test_flat_density_parseval(self):
        """White noise of variance v sampled at fs has density 2 v / fs
        one-sided (variance spread over [0, fs/2])."""
        rng = np.random.default_rng(7)
        fs = 100.0
        x = rng.normal(scale=2.0, size=400_000)
        f, s = welch_psd(x, 1.0 / fs)
        expected = 2.0 * 4.0 / fs
        assert np.median(s) == pytest.approx(expected, rel=0.05)


class TestLorentzianRecovery:
    @pytest.fixture()
    def telegraph(self, rng):
        lam_c, lam_e = 800.0, 400.0
        trace = simulate_constant(lam_c, lam_e, 0.0, 200.0, rng)
        dt = 5e-5
        grid = np.arange(0.0, 200.0, dt)
        return lam_c, lam_e, dt, trace.sample(grid).astype(float)

    def test_welch_matches_lorentzian(self, telegraph):
        lam_c, lam_e, dt, samples = telegraph
        f, s = welch_psd(samples, dt, nperseg=16384)
        model = lorentzian_psd(f, lam_c, lam_e, 1.0)
        # Compare in the well-resolved band around the corner.
        f_c = lorentzian_corner_frequency(lam_c, lam_e)
        band = (f > f_c / 10) & (f < f_c * 10)
        ratio = s[band] / model[band]
        assert np.median(ratio) == pytest.approx(1.0, abs=0.15)

    def test_cov_route_matches_welch(self, telegraph):
        """The paper's R(tau)->S(f) route agrees with direct Welch."""
        lam_c, lam_e, dt, samples = telegraph
        lags, cov = autocovariance(samples, dt, max_lag=4000)
        freq = np.logspace(1.0, 3.5, 40)
        s_cov = psd_from_autocovariance(lags, cov, freq)
        model = lorentzian_psd(freq, lam_c, lam_e, 1.0)
        band = s_cov > 0
        ratio = s_cov[band] / model[band]
        assert np.median(ratio) == pytest.approx(1.0, abs=0.25)

    def test_corner_visible(self, telegraph):
        lam_c, lam_e, dt, samples = telegraph
        f, s = welch_psd(samples, dt, nperseg=16384)
        f_c = lorentzian_corner_frequency(lam_c, lam_e)
        low = np.median(s[(f > f_c / 8) & (f < f_c / 4)])
        high = np.median(s[(f > 4 * f_c) & (f < 8 * f_c)])
        assert low / high > 8.0  # ~1/f^2 rolloff past the corner
