"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.tier1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig8"])
        assert args.seed == 2
        assert args.scale == 30.0


class TestCommands:
    def test_cards(self, capsys):
        assert main(["cards"]) == 0
        out = capsys.readouterr().out
        assert "90nm" in out and "22nm" in out
        assert "t_ox" in out

    def test_cards_lists_every_technology(self, capsys):
        from repro.devices.technology import TECHNOLOGIES

        assert main(["cards"]) == 0
        out = capsys.readouterr().out
        for name in TECHNOLOGIES:
            assert name in out

    def test_ensemble(self, capsys):
        # --verify 0 skips the per-cell SPICE passes: no cell can be
        # confirmed failing, so the exit code must be 0.
        assert main(["ensemble", "--cells", "2", "--seed", "1",
                     "--verify", "0", "--margins", "1"]) == 0
        out = capsys.readouterr().out
        assert "Ensemble (2 cells" in out
        assert "batched candidates" in out
        assert "nominal hold SNM" in out
        assert "sampled hold SNM" in out

    def test_traps(self, capsys):
        assert main(["traps", "--tech", "45nm", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Sampled trap population" in out
        assert "Poisson mean" in out

    def test_snm(self, capsys):
        assert main(["snm", "--tech", "90nm"]) == 0
        out = capsys.readouterr().out
        assert "hold" in out and "read" in out

    def test_retention(self, capsys):
        assert main(["retention", "--trials", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "VRT scan" in out
        assert "frozen-state levels" in out

    def test_ensemble_checkpoint_and_resume(self, capsys, tmp_path):
        directory = str(tmp_path / "run")
        base = ["ensemble", "--cells", "4", "--seed", "1",
                "--threshold", "0", "--margins", "0"]
        assert main(base + ["--verify", "1",
                            "--checkpoint-dir", directory]) == 0
        out = capsys.readouterr().out
        assert "statuses: ok" in out
        assert f"checkpoint: {directory}" in out

        assert main(base + ["--verify", "4", "--resume", directory]) == 0
        out = capsys.readouterr().out
        assert f"checkpoint: {directory}" in out

    def test_ensemble_rejects_bad_retry_arguments(self):
        with pytest.raises(ValueError):
            main(["ensemble", "--cells", "2", "--retry-attempts", "0"])

    def test_ensemble_observability_exports(self, capsys, tmp_path):
        import json

        from repro.obs.tracer import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        telemetry_path = tmp_path / "telemetry.json"
        assert main(["ensemble", "--cells", "2", "--seed", "1",
                     "--verify", "0", "--margins", "0",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(telemetry_path),
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Run telemetry" in out          # --profile report
        assert "Pipeline timings" in out
        document = json.loads(trace_path.read_text())
        assert validate_chrome_trace(document) == []
        telemetry = json.loads(telemetry_path.read_text())
        assert telemetry["schema"] == "repro.telemetry/1"
        assert telemetry["n_cells"] == 2
        assert telemetry["metrics"]["counters"]["transient.runs"] >= 1

    def test_report_renders_telemetry_and_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        telemetry_path = tmp_path / "telemetry.json"
        main(["ensemble", "--cells", "2", "--seed", "1", "--verify", "0",
              "--margins", "0", "--trace-out", str(trace_path),
              "--metrics-out", str(telemetry_path)])
        capsys.readouterr()

        assert main(["report", str(telemetry_path)]) == 0
        out = capsys.readouterr().out
        assert "Run telemetry" in out

        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "spice.transient" in out

    def test_fig8_exit_code_signals_compromise(self, capsys):
        # Scale 0: clean, exit 0.
        assert main(["fig8", "--seed", "2", "--scale", "0"]) == 0
        # Scale 30 with the pinned seed: compromised, exit 2.
        assert main(["fig8", "--seed", "2", "--scale", "30"]) == 2
        out = capsys.readouterr().out
        assert "cell compromised: True" in out


class TestScenarioCommand:
    def test_scenario_requires_an_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_run_requires_a_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "run"])

    def test_scenario_run_rejects_unknown_backends(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "run", "oscillators.pll",
                 "--backend", "quantum"])

    def test_list_shows_every_registered_scenario(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("sram.array", "sram.verify", "dram.retention",
                     "reliability.nbti", "oscillators.ring",
                     "oscillators.pll"):
            assert name in out
        # The embedded-only verification fan-out is flagged as such.
        assert "internal" in out

    def test_run_executes_a_sweep(self, capsys):
        assert main(["scenario", "run", "oscillators.pll",
                     "--n", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Scenario oscillators.pll (2 jobs" in out
        assert "backend serial" in out
        assert "MHz" in out

    def test_run_honours_backend_and_workers(self, capsys):
        assert main(["scenario", "run", "oscillators.pll", "--n", "2",
                     "--backend", "process", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "backend process" in out

    def test_run_refuses_internal_scenarios(self, capsys):
        assert main(["scenario", "run", "sram.verify"]) == 2
        err = capsys.readouterr().err
        assert "no standalone configuration" in err

    def test_run_checkpoint_then_resume(self, capsys, tmp_path):
        directory = str(tmp_path / "run")
        base = ["scenario", "run", "oscillators.pll", "--n", "2",
                "--seed", "3"]
        assert main(base + ["--checkpoint-dir", directory]) == 0
        out = capsys.readouterr().out
        assert f"checkpoint: {directory}" in out

        assert main(base + ["--resume", directory]) == 0
        out = capsys.readouterr().out
        assert "resumed" in out and "| 2" in out
