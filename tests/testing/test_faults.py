"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import pytest

from repro.errors import ConvergenceError, WorkerCrashError
from repro.testing import faults
from repro.testing.faults import FaultPlan, inject_faults

pytestmark = pytest.mark.tier1


class TestDecisions:
    def test_deterministic(self):
        plan = FaultPlan(seed=3, crash_rate=0.4)
        draws = [plan.decide("worker", key, attempt)
                 for key in range(50) for attempt in range(3)]
        again = [plan.decide("worker", key, attempt)
                 for key in range(50) for attempt in range(3)]
        assert draws == again
        assert any(draws) and not all(draws)

    def test_rate_extremes(self):
        never = FaultPlan(seed=0, convergence_rate=0.0)
        always = FaultPlan(seed=0, convergence_rate=1.0)
        assert not any(never.decide("job", k) for k in range(100))
        assert all(always.decide("job", k) for k in range(100))

    def test_rate_roughly_matches_frequency(self):
        plan = FaultPlan(seed=1, hang_rate=0.2)
        hits = sum(plan.decide("hang", k) for k in range(2000))
        assert 0.15 < hits / 2000 < 0.25

    def test_attempts_redraw_independently(self):
        # A retry of the same job must get a fresh decision — otherwise
        # a faulted cell could never be recovered by retrying.
        plan = FaultPlan(seed=2, crash_rate=0.5)
        first = [plan.decide("worker", k, 0) for k in range(200)]
        second = [plan.decide("worker", k, 1) for k in range(200)]
        assert first != second

    def test_unknown_site_never_faults(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, convergence_rate=1.0)
        assert not plan.decide("no-such-site", 0)


class TestHarness:
    def test_inert_by_default(self):
        assert faults.active() is None
        assert not faults.should("job", 0)
        faults.fire("job", 0)  # no-op

    def test_context_manager_arms_and_disarms(self):
        with inject_faults(convergence_rate=1.0, seed=5) as plan:
            assert faults.active() is plan
            assert faults.should("job", 0)
        assert faults.active() is None

    def test_job_site_raises_convergence_error_with_metadata(self):
        with inject_faults(convergence_rate=1.0):
            with pytest.raises(ConvergenceError) as excinfo:
                faults.fire("job", 12)
        assert excinfo.value.iterations is not None
        assert excinfo.value.residual is not None

    def test_worker_site_in_process_raises_instead_of_exiting(self):
        # In the host interpreter a "crash" must not take the test down.
        with inject_faults(crash_rate=1.0):
            with pytest.raises(WorkerCrashError):
                faults.fire("worker", 4)

    def test_install_handoff(self):
        plan = FaultPlan(seed=9, convergence_rate=1.0)
        faults.install(plan)
        try:
            assert faults.should("job", 1)
        finally:
            faults.install(None)
        assert faults.active() is None
