"""Tests for the shared seed-spawning convention."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.testing.seeding import (
    derive_rng,
    derive_seed,
    spawn_rngs,
    spawn_seeds,
    uniform_from_tags,
)

pytestmark = pytest.mark.tier1


class TestDeriveSeed:
    def test_deterministic_across_calls(self):
        assert derive_seed(7, "cell", 3) == derive_seed(7, "cell", 3)

    def test_tags_separate_streams(self):
        assert derive_seed(7, "cell", 3) != derive_seed(7, "trap", 3)
        assert derive_seed(7, "cell", 3) != derive_seed(8, "cell", 3)
        assert derive_seed(7, "cell", 3) != derive_seed(7, "cell", 4)

    def test_is_64_bit(self):
        for tags in [(), ("a",), ("a", 1, 2.5)]:
            assert 0 <= derive_seed(0, *tags) < 2 ** 64

    def test_matches_blake2b_of_token(self):
        """The documented token format is the contract: string tags go
        in verbatim, everything else contributes its repr."""
        token = b"7:site:(1, 2)"
        expected = int.from_bytes(
            hashlib.blake2b(token, digest_size=8).digest(), "big")
        assert derive_seed(7, "site", (1, 2)) == expected


class TestUniformFromTags:
    def test_range_and_determinism(self):
        values = [uniform_from_tags(3, "x", k) for k in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [uniform_from_tags(3, "x", k) for k in range(100)]

    def test_roughly_uniform(self):
        values = np.array([uniform_from_tags(0, "u", k)
                           for k in range(2000)])
        assert 0.45 < values.mean() < 0.55
        assert abs(np.std(values) - np.sqrt(1 / 12)) < 0.02

    def test_fault_plan_bit_compat(self):
        """FaultPlan.decide predates this module; its historical token
        ``"{seed}:{site}:{key!r}:{attempt}"`` must keep hashing to the
        same decisions (checkpointed runs replay fault schedules)."""
        from repro.testing.faults import FaultPlan

        plan = FaultPlan(seed=42, crash_rate=0.3)
        for key in (3, "cell-9", (1, 2), None):
            token = f"42:worker:{key!r}:0".encode()
            digest = hashlib.blake2b(token, digest_size=8).digest()
            old = int.from_bytes(digest, "big") / 2.0 ** 64 < 0.3
            assert plan.decide("worker", key, 0) == old


class TestDeriveRng:
    def test_no_tags_matches_default_rng(self):
        a = derive_rng(20110314).random(5)
        b = np.random.default_rng(20110314).random(5)
        assert np.array_equal(a, b)

    def test_tagged_streams_reproducible_and_independent(self):
        a1 = derive_rng(7, "stationary").random(5)
        a2 = derive_rng(7, "stationary").random(5)
        b = derive_rng(7, "transient").random(5)
        assert np.array_equal(a1, a2)
        assert not np.array_equal(a1, b)


class TestSpawn:
    def test_spawn_seeds_are_seed_sequences(self):
        children = spawn_seeds(5, 3)
        assert len(children) == 3
        assert all(isinstance(c, np.random.SeedSequence) for c in children)

    def test_spawn_rngs_independent_but_reproducible(self):
        first = [g.random(4) for g in spawn_rngs(5, 3)]
        second = [g.random(4) for g in spawn_rngs(5, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestNoBareGlobalRandomness:
    def test_library_never_touches_np_random_module_state(self):
        """The convention's enforcement half: no ``np.random.<draw>()``
        module-level calls anywhere in the library source (generators
        are always passed in or derived from explicit seeds)."""
        import re
        from pathlib import Path

        import repro

        src_root = Path(repro.__file__).parent
        banned = re.compile(
            r"np\.random\.(random|rand|randn|randint|uniform|normal|"
            r"choice|shuffle|permutation|seed)\b")
        offenders = []
        for path in src_root.rglob("*.py"):
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if banned.search(line):
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)
