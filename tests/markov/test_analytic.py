"""Tests for the closed-form two-state chain results."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.markov.analytic import (
    lorentzian_corner_frequency,
    lorentzian_psd,
    occupancy_probability,
    occupancy_probability_constant,
    stationary_autocorrelation,
    stationary_autocovariance,
    stationary_occupancy,
    superposed_lorentzian_psd,
)

pytestmark = pytest.mark.tier1

rates = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


class TestStationaryOccupancy:
    def test_symmetric(self):
        assert stationary_occupancy(5.0, 5.0) == 0.5

    def test_limits(self):
        assert stationary_occupancy(1.0, 0.0) == 1.0
        assert stationary_occupancy(0.0, 1.0) == 0.0

    def test_rejects_zero_total(self):
        with pytest.raises(AnalysisError):
            stationary_occupancy(0.0, 0.0)

    @settings(max_examples=100, deadline=None)
    @given(lam_c=rates, lam_e=rates)
    def test_property_beta_relation(self, lam_c, lam_e):
        """p1 == 1/(1+beta) with beta = lambda_e/lambda_c (paper Eq. 2)."""
        beta = lam_e / lam_c
        assert stationary_occupancy(lam_c, lam_e) == pytest.approx(
            1.0 / (1.0 + beta))


class TestOccupancyProbability:
    def test_constant_rates_relaxation(self):
        p = occupancy_probability_constant(0.0, 3.0, 1.0, 0.0)
        assert p == 0.0
        p_inf = occupancy_probability_constant(1e9, 3.0, 1.0, 0.0)
        assert p_inf == pytest.approx(0.75)

    def test_constant_vectorised(self):
        t = np.linspace(0, 1, 5)
        p = occupancy_probability_constant(t, 2.0, 2.0, 1.0)
        assert p.shape == t.shape
        assert np.all(np.diff(p) <= 0.0)  # decays towards 0.5 from 1

    def test_constant_rejects_negative_time(self):
        with pytest.raises(AnalysisError):
            occupancy_probability_constant(-1.0, 1.0, 1.0, 0.5)

    def test_ode_matches_closed_form_for_constant_rates(self):
        times = np.linspace(0.0, 2.0, 41)
        numeric = occupancy_probability(times, lambda t: 3.0, lambda t: 1.0, 0.1)
        exact = occupancy_probability_constant(times, 3.0, 1.0, 0.1)
        assert np.max(np.abs(numeric - exact)) < 1e-6

    def test_ode_input_validation(self):
        with pytest.raises(AnalysisError):
            occupancy_probability(np.array([0.0]), lambda t: 1.0,
                                  lambda t: 1.0, 0.5)
        with pytest.raises(AnalysisError):
            occupancy_probability(np.array([0.0, 0.0]), lambda t: 1.0,
                                  lambda t: 1.0, 0.5)
        with pytest.raises(AnalysisError):
            occupancy_probability(np.array([0.0, 1.0]), lambda t: 1.0,
                                  lambda t: 1.0, 1.5)

    def test_ode_stays_in_unit_interval(self):
        times = np.linspace(0.0, 0.1, 101)
        p = occupancy_probability(
            times,
            lambda t: 1e3 * (0.5 + 0.5 * np.sin(300.0 * t)),
            lambda t: 1e3 * (0.5 - 0.5 * np.sin(300.0 * t)),
            0.0,
        )
        assert np.all(p >= -1e-9)
        assert np.all(p <= 1.0 + 1e-9)


class TestAutocorrelation:
    def test_zero_lag_values(self):
        lam_c, lam_e, d_i = 4.0, 6.0, 2.0
        p1 = stationary_occupancy(lam_c, lam_e)
        assert stationary_autocovariance(0.0, lam_c, lam_e, d_i) == \
            pytest.approx(d_i ** 2 * p1 * (1 - p1))
        # R(0) = E[I^2] = delta_i^2 * p1 for a 0/1 process.
        assert stationary_autocorrelation(0.0, lam_c, lam_e, d_i) == \
            pytest.approx(d_i ** 2 * p1)

    def test_symmetry_in_tau(self):
        tau = np.array([-0.3, 0.3])
        values = stationary_autocorrelation(tau, 5.0, 5.0, 1.0)
        assert values[0] == pytest.approx(values[1])

    def test_long_lag_limit_is_dc_squared(self):
        lam_c, lam_e, d_i = 7.0, 3.0, 1.5
        p1 = stationary_occupancy(lam_c, lam_e)
        assert stationary_autocorrelation(1e6, lam_c, lam_e, d_i) == \
            pytest.approx((d_i * p1) ** 2)

    @settings(max_examples=50, deadline=None)
    @given(lam_c=rates, lam_e=rates,
           tau=st.floats(min_value=0.0, max_value=10.0))
    def test_property_decay_rate(self, lam_c, lam_e, tau):
        """The covariance decays exactly at rate lambda_c + lambda_e."""
        c0 = stationary_autocovariance(0.0, lam_c, lam_e)
        ct = stationary_autocovariance(tau, lam_c, lam_e)
        expected = c0 * np.exp(-(lam_c + lam_e) * tau)
        assert ct == pytest.approx(expected, rel=1e-9, abs=1e-300)


class TestLorentzian:
    def test_plateau_value(self):
        lam_c, lam_e, d_i = 100.0, 300.0, 1e-6
        p1 = stationary_occupancy(lam_c, lam_e)
        total = lam_c + lam_e
        assert lorentzian_psd(0.0, lam_c, lam_e, d_i) == \
            pytest.approx(4 * d_i ** 2 * p1 * (1 - p1) / total)

    def test_corner_frequency(self):
        assert lorentzian_corner_frequency(100.0, 300.0) == \
            pytest.approx(400.0 / (2 * np.pi))
        with pytest.raises(AnalysisError):
            lorentzian_corner_frequency(0.0, 0.0)

    def test_half_power_at_corner(self):
        lam_c, lam_e = 50.0, 150.0
        f_c = lorentzian_corner_frequency(lam_c, lam_e)
        assert lorentzian_psd(f_c, lam_c, lam_e) == \
            pytest.approx(0.5 * lorentzian_psd(0.0, lam_c, lam_e))

    def test_high_frequency_rolloff(self):
        """S(f) ~ 1/f^2 far above the corner."""
        lam_c, lam_e = 10.0, 10.0
        s1 = lorentzian_psd(1e5, lam_c, lam_e)
        s2 = lorentzian_psd(2e5, lam_c, lam_e)
        assert s1 / s2 == pytest.approx(4.0, rel=1e-3)

    def test_parseval_consistency(self):
        """Integral of the one-sided PSD equals the variance C(0)."""
        lam_c, lam_e, d_i = 40.0, 60.0, 2.0
        freq = np.linspace(0.0, 5e4, 2_000_001)
        psd = lorentzian_psd(freq, lam_c, lam_e, d_i)
        integral = np.trapezoid(psd, freq)
        assert integral == pytest.approx(
            stationary_autocovariance(0.0, lam_c, lam_e, d_i), rel=1e-2)

    def test_superposition_additivity(self):
        f = np.logspace(0, 4, 20)
        single = lorentzian_psd(f, 10.0, 20.0, 1.0)
        double = superposed_lorentzian_psd(
            f, [10.0, 10.0], [20.0, 20.0], [1.0, 1.0])
        assert np.allclose(double, 2.0 * single)

    def test_superposition_shape_validation(self):
        with pytest.raises(AnalysisError):
            superposed_lorentzian_psd(1.0, [1.0], [1.0, 2.0], [1.0])
