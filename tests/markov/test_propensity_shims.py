"""Tests for the keyword-only propensity constructors and their shims."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.errors import ModelError
from repro.markov.propensity import (
    CallableTwoStatePropensity,
    ConstantTwoStatePropensity,
    SampledTwoStatePropensity,
    make_propensity,
)

pytestmark = pytest.mark.tier1

TIMES = np.array([0.0, 0.5, 1.0])
RATES = np.array([1.0, 2.0, 4.0])


def _vec(value: float):
    return lambda t: np.full_like(np.asarray(t, dtype=float), value)


class TestKeywordPath:
    def test_keyword_construction_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ConstantTwoStatePropensity(lambda_c=1.0, lambda_e=2.0)
            CallableTwoStatePropensity(capture_fn=_vec(1.0),
                                       emission_fn=_vec(1.0), rate_bound=2.0)
            SampledTwoStatePropensity(times=TIMES, capture_values=RATES,
                                      emission_values=RATES,
                                      bound_safety=2.0)

    def test_unexpected_keyword_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            ConstantTwoStatePropensity(lambda_c=1.0, lambda_e=2.0, bogus=3)


class TestPositionalShim:
    def test_positional_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="lambda_c, lambda_e"):
            prop = ConstantTwoStatePropensity(3.0, 4.0)
        assert prop.lambda_c == 3.0 and prop.lambda_e == 4.0

        with pytest.warns(DeprecationWarning):
            prop = CallableTwoStatePropensity(_vec(1.0), _vec(2.0), 5.0)
        assert prop.rate_bound() == 5.0

        with pytest.warns(DeprecationWarning):
            prop = SampledTwoStatePropensity(TIMES, RATES, RATES, 2.0)
        assert prop.rate_bound() == pytest.approx(8.0)  # peak 4 * safety 2

    def test_mixed_positional_and_keyword(self):
        with pytest.warns(DeprecationWarning):
            prop = ConstantTwoStatePropensity(3.0, lambda_e=4.0)
        assert prop.lambda_e == 4.0

    def test_duplicate_argument_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                ConstantTwoStatePropensity(3.0, lambda_c=1.0, lambda_e=2.0)

    def test_excess_positionals_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="at most"):
                ConstantTwoStatePropensity(1.0, 2.0, 3.0)


class TestMakePropensity:
    def test_constant_dispatch(self):
        prop = make_propensity(lambda_c=1.0, lambda_e=2.0)
        assert isinstance(prop, ConstantTwoStatePropensity)
        assert prop.rate_bound() == 3.0

    def test_sampled_dispatch(self):
        prop = make_propensity(times=TIMES, capture_values=RATES,
                               emission_values=RATES)
        assert isinstance(prop, SampledTwoStatePropensity)
        assert prop.capture(0.25) == pytest.approx(1.5)

    def test_callable_dispatch(self):
        prop = make_propensity(capture_fn=_vec(1.0), emission_fn=_vec(2.0),
                               rate_bound=3.0)
        assert isinstance(prop, CallableTwoStatePropensity)

    def test_mixed_descriptions_rejected(self):
        with pytest.raises(ModelError, match="exactly one"):
            make_propensity(lambda_c=1.0, times=TIMES)
        with pytest.raises(ModelError):
            make_propensity()

    def test_incomplete_description_rejected(self):
        with pytest.raises(ModelError):
            make_propensity(lambda_c=1.0)
        with pytest.raises(ModelError):
            make_propensity(times=TIMES, capture_values=RATES)
        with pytest.raises(ModelError):
            make_propensity(capture_fn=_vec(1.0), emission_fn=_vec(1.0))
