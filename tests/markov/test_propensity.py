"""Tests for the propensity abstractions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.markov.propensity import (
    CallableTwoStatePropensity,
    ConstantTwoStatePropensity,
    SampledTwoStatePropensity,
    TwoStatePropensity,
)

pytestmark = pytest.mark.tier1


class TestConstantPropensity:
    def test_values_and_bound(self):
        prop = ConstantTwoStatePropensity(lambda_c=3.0, lambda_e=7.0)
        assert prop.capture(0.0) == 3.0
        assert prop.emission(123.4) == 7.0
        assert prop.rate_bound() == 10.0

    def test_vectorised_evaluation(self):
        prop = ConstantTwoStatePropensity(lambda_c=3.0, lambda_e=7.0)
        t = np.linspace(0, 1, 5)
        assert np.all(prop.capture(t) == 3.0)
        assert np.all(prop.emission(t) == 7.0)

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            ConstantTwoStatePropensity(lambda_c=-1.0, lambda_e=2.0)

    def test_rejects_all_zero(self):
        with pytest.raises(ModelError):
            ConstantTwoStatePropensity(lambda_c=0.0, lambda_e=0.0)

    def test_satisfies_protocol(self):
        assert isinstance(ConstantTwoStatePropensity(lambda_c=1.0, lambda_e=1.0), TwoStatePropensity)

    def test_repr_mentions_rates(self):
        text = repr(ConstantTwoStatePropensity(lambda_c=1.5, lambda_e=2.5))
        assert "1.5" in text and "2.5" in text


class TestCallablePropensity:
    def test_passthrough(self):
        prop = CallableTwoStatePropensity(
            capture_fn=lambda t: 1.0 + t, emission_fn=lambda t: 2.0 - t,
            rate_bound=3.0)
        assert prop.capture(1.0) == 2.0
        assert prop.emission(0.5) == 1.5
        assert prop.rate_bound() == 3.0

    def test_rejects_bad_bound(self):
        with pytest.raises(ModelError):
            CallableTwoStatePropensity(capture_fn=lambda t: 1.0,
                                       emission_fn=lambda t: 1.0,
                                       rate_bound=0.0)
        with pytest.raises(ModelError):
            CallableTwoStatePropensity(capture_fn=lambda t: 1.0, emission_fn=lambda t: 1.0,
                                       rate_bound=float("inf"))

    def test_satisfies_protocol(self):
        prop = CallableTwoStatePropensity(capture_fn=lambda t: 1.0,
                                          emission_fn=lambda t: 1.0,
                                          rate_bound=2.0)
        assert isinstance(prop, TwoStatePropensity)


class TestSampledPropensity:
    def make(self) -> SampledTwoStatePropensity:
        times = np.array([0.0, 1.0, 2.0])
        return SampledTwoStatePropensity(
            times=times, capture_values=np.array([1.0, 3.0, 1.0]),
            emission_values=np.array([4.0, 2.0, 4.0]))

    def test_interpolation(self):
        prop = self.make()
        assert prop.capture(0.5) == pytest.approx(2.0)
        assert prop.emission(1.5) == pytest.approx(3.0)

    def test_clamped_extrapolation(self):
        prop = self.make()
        assert prop.capture(-5.0) == 1.0
        assert prop.capture(10.0) == 1.0
        assert prop.emission(10.0) == 4.0

    def test_bound_is_sample_peak(self):
        assert self.make().rate_bound() == 4.0

    def test_bound_safety_scales(self):
        times = np.array([0.0, 1.0])
        prop = SampledTwoStatePropensity(
            times=times, capture_values=np.array([1.0, 2.0]),
            emission_values=np.array([1.0, 1.0]), bound_safety=3.0)
        assert prop.rate_bound() == 6.0

    def test_window_properties(self):
        prop = self.make()
        assert prop.t_start == 0.0
        assert prop.t_stop == 2.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ModelError):
            SampledTwoStatePropensity(
                times=np.array([0.0, 1.0]), capture_values=np.array([1.0]),
                emission_values=np.array([1.0, 1.0]))

    def test_rejects_non_monotone_times(self):
        with pytest.raises(ModelError):
            SampledTwoStatePropensity(
                times=np.array([0.0, 0.0]), capture_values=np.array([1.0, 1.0]),
                emission_values=np.array([1.0, 1.0]))

    def test_rejects_negative_samples(self):
        with pytest.raises(ModelError):
            SampledTwoStatePropensity(
                times=np.array([0.0, 1.0]), capture_values=np.array([-1.0, 1.0]),
                emission_values=np.array([1.0, 1.0]))

    def test_rejects_all_zero_samples(self):
        with pytest.raises(ModelError):
            SampledTwoStatePropensity(
                times=np.array([0.0, 1.0]), capture_values=np.zeros(2),
                emission_values=np.zeros(2))

    def test_rejects_bound_safety_below_one(self):
        with pytest.raises(ModelError):
            SampledTwoStatePropensity(
                times=np.array([0.0, 1.0]), capture_values=np.ones(2),
                emission_values=np.ones(2), bound_safety=0.5)


@settings(max_examples=50, deadline=None)
@given(
    captures=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2,
                      max_size=20),
    emissions=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2,
                       max_size=20),
)
def test_property_sampled_bound_dominates_interpolant(captures, emissions):
    """Linear interpolation never exceeds the declared rate bound."""
    n = min(len(captures), len(emissions))
    captures = np.asarray(captures[:n])
    emissions = np.asarray(emissions[:n])
    if captures.max() == 0.0 and emissions.max() == 0.0:
        captures = captures + 1.0
    times = np.arange(n, dtype=float)
    prop = SampledTwoStatePropensity(times=times, capture_values=captures, emission_values=emissions)
    bound = prop.rate_bound()
    grid = np.linspace(0.0, n - 1.0, 257)
    assert np.all(prop.capture(grid) <= bound + 1e-9)
    assert np.all(prop.emission(grid) <= bound + 1e-9)
