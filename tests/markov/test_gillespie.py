"""Tests for the stationary Gillespie SSA kernel."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.errors import SimulationError
from repro.markov.analytic import stationary_occupancy
from repro.markov.gillespie import simulate_constant, sojourn_mean

pytestmark = pytest.mark.tier1


class TestInterface:
    def test_rejects_negative_rates(self, rng):
        with pytest.raises(SimulationError):
            simulate_constant(-1.0, 1.0, 0.0, 1.0, rng)

    def test_rejects_bad_window(self, rng):
        with pytest.raises(SimulationError):
            simulate_constant(1.0, 1.0, 1.0, 1.0, rng)

    def test_rejects_bad_initial_state(self, rng):
        with pytest.raises(SimulationError):
            simulate_constant(1.0, 1.0, 0.0, 1.0, rng, initial_state=-1)

    def test_absorbing_state_zero_rate(self, rng):
        # lambda_e == 0: once filled, the trap never empties.
        trace = simulate_constant(50.0, 0.0, 0.0, 10.0, rng, initial_state=0)
        assert trace.final_state == 1
        assert trace.n_transitions <= 1

    def test_absorbing_from_start(self, rng):
        trace = simulate_constant(0.0, 5.0, 0.0, 10.0, rng, initial_state=0)
        assert trace.n_transitions == 0
        assert trace.fraction_filled() == 0.0


class TestStatistics:
    def test_occupancy(self, rng):
        lam_c, lam_e = 120.0, 40.0
        trace = simulate_constant(lam_c, lam_e, 0.0, 300.0, rng)
        assert trace.fraction_filled() == pytest.approx(
            stationary_occupancy(lam_c, lam_e), abs=0.02)

    def test_dwell_exponentiality(self, rng):
        lam_c, lam_e = 90.0, 110.0
        trace = simulate_constant(lam_c, lam_e, 0.0, 200.0, rng)
        for state, rate in ((0, lam_c), (1, lam_e)):
            dwells = trace.dwell_times(state)
            __, p_value = stats.kstest(dwells, "expon", args=(0, 1.0 / rate))
            assert p_value > 1e-3

    def test_alternation_structure(self, rng):
        trace = simulate_constant(40.0, 40.0, 0.0, 50.0, rng)
        assert np.all(trace.states[1:] != trace.states[:-1])


class TestSojournMean:
    def test_finite(self):
        assert sojourn_mean(4.0, 2.0, 0) == 0.25
        assert sojourn_mean(4.0, 2.0, 1) == 0.5

    def test_infinite_for_absorbing(self):
        assert sojourn_mean(0.0, 2.0, 0) == float("inf")
