"""Tests for the uniformisation kernel (paper Algorithm 1).

The load-bearing checks are statistical: at constant rates the kernel
must be distributionally indistinguishable from the Gillespie oracle,
and under time-varying rates the empirical occupancy probability must
track the master-equation solution.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.errors import SimulationError
from repro.markov.analytic import (
    occupancy_probability,
    occupancy_probability_constant,
    stationary_occupancy,
)
from repro.markov.propensity import (
    CallableTwoStatePropensity,
    ConstantTwoStatePropensity,
    SampledTwoStatePropensity,
)
from repro.markov.uniformization import (
    simulate_trap,
    simulate_trap_detailed,
    simulate_traps,
)

pytestmark = pytest.mark.tier1


class TestInterface:
    def test_rejects_bad_window(self, rng):
        prop = ConstantTwoStatePropensity(lambda_c=1.0, lambda_e=1.0)
        with pytest.raises(SimulationError):
            simulate_trap(prop, 1.0, 1.0, rng)
        with pytest.raises(SimulationError):
            simulate_trap(prop, 1.0, 0.0, rng)

    def test_rejects_bad_initial_state(self, rng):
        prop = ConstantTwoStatePropensity(lambda_c=1.0, lambda_e=1.0)
        with pytest.raises(SimulationError):
            simulate_trap(prop, 0.0, 1.0, rng, initial_state=2)

    def test_rejects_bad_bound_override(self, rng):
        prop = ConstantTwoStatePropensity(lambda_c=1.0, lambda_e=1.0)
        with pytest.raises(SimulationError):
            simulate_trap(prop, 0.0, 1.0, rng, rate_bound=-1.0)

    def test_rejects_explosive_runs(self, rng):
        prop = ConstantTwoStatePropensity(lambda_c=1e12, lambda_e=1e12)
        with pytest.raises(SimulationError):
            simulate_trap(prop, 0.0, 1.0, rng)

    def test_invalid_bound_detected_during_run(self, rng):
        # Bound below the true rate must be caught, not silently wrong.
        prop = CallableTwoStatePropensity(capture_fn=
            lambda t: 10.0, emission_fn=lambda t: 10.0, rate_bound=20.0)
        with pytest.raises(SimulationError):
            simulate_trap(prop, 0.0, 100.0, rng, rate_bound=1.0)

    def test_trace_covers_window(self, rng):
        prop = ConstantTwoStatePropensity(lambda_c=5.0, lambda_e=5.0)
        trace = simulate_trap(prop, 2.0, 12.0, rng, initial_state=1)
        assert trace.t_start == 2.0
        assert trace.t_stop == 12.0
        assert trace.initial_state == 1

    def test_reproducible_given_seed(self, rng_factory):
        prop = ConstantTwoStatePropensity(lambda_c=50.0, lambda_e=30.0)
        a = simulate_trap(prop, 0.0, 10.0, rng_factory(7))
        b = simulate_trap(prop, 0.0, 10.0, rng_factory(7))
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.states, b.states)

    def test_detailed_stats_consistent(self, rng):
        prop = ConstantTwoStatePropensity(lambda_c=40.0, lambda_e=60.0)
        trace, stats_ = simulate_trap_detailed(prop, 0.0, 20.0, rng)
        assert stats_.rate_bound == 100.0
        assert stats_.n_accepted == trace.n_transitions
        assert stats_.n_candidates >= stats_.n_accepted
        assert 0.0 <= stats_.acceptance_ratio <= 1.0

    def test_zero_candidate_acceptance_ratio(self):
        from repro.markov.uniformization import UniformizationStats
        s = UniformizationStats(n_candidates=0, n_accepted=0, rate_bound=1.0)
        assert s.acceptance_ratio == 0.0

    def test_simulate_traps_defaults_and_validation(self, rng):
        props = [ConstantTwoStatePropensity(lambda_c=10.0, lambda_e=10.0)] * 3
        traces = simulate_traps(props, 0.0, 5.0, rng)
        assert len(traces) == 3
        assert all(t.initial_state == 0 for t in traces)
        with pytest.raises(SimulationError):
            simulate_traps(props, 0.0, 5.0, rng, initial_states=[0, 1])


class TestConstantRateStatistics:
    """At constant rates, Algorithm 1 must match the stationary oracle."""

    def test_occupancy_matches_stationary(self, rng):
        lam_c, lam_e = 80.0, 40.0
        prop = ConstantTwoStatePropensity(lambda_c=lam_c, lambda_e=lam_e)
        trace = simulate_trap(prop, 0.0, 400.0, rng, initial_state=0)
        expected = stationary_occupancy(lam_c, lam_e)
        # Standard error of the time-average ~ sqrt(2 p q / (S T)) ~ 0.003.
        assert trace.fraction_filled() == pytest.approx(expected, abs=0.02)

    def test_dwell_times_are_exponential(self, rng):
        lam_c, lam_e = 100.0, 60.0
        prop = ConstantTwoStatePropensity(lambda_c=lam_c, lambda_e=lam_e)
        trace = simulate_trap(prop, 0.0, 200.0, rng)
        for state, rate in ((0, lam_c), (1, lam_e)):
            dwells = trace.dwell_times(state)
            assert dwells.size > 1000
            assert dwells.mean() == pytest.approx(1.0 / rate, rel=0.1)
            __, p_value = stats.kstest(dwells, "expon", args=(0, 1.0 / rate))
            assert p_value > 1e-3

    def test_transition_count_near_expectation(self, rng):
        lam_c, lam_e = 50.0, 50.0
        prop = ConstantTwoStatePropensity(lambda_c=lam_c, lambda_e=lam_e)
        t_total = 100.0
        trace = simulate_trap(prop, 0.0, t_total, rng)
        # Symmetric chain: transition rate is 50/s in both states.
        expected = 50.0 * t_total
        assert trace.n_transitions == pytest.approx(expected, rel=0.1)

    def test_matches_gillespie_distribution(self, rng_factory):
        """KS test on final-state-resolved dwell samples vs Gillespie."""
        from repro.markov.gillespie import simulate_constant
        lam_c, lam_e = 30.0, 70.0
        prop = ConstantTwoStatePropensity(lambda_c=lam_c, lambda_e=lam_e)
        uni = simulate_trap(prop, 0.0, 300.0, rng_factory(1))
        gil = simulate_constant(lam_c, lam_e, 0.0, 300.0, rng_factory(2))
        for state in (0, 1):
            __, p_value = stats.ks_2samp(uni.dwell_times(state),
                                         gil.dwell_times(state))
            assert p_value > 1e-3

    def test_loose_bound_preserves_statistics(self, rng_factory):
        """Ablation A3 invariant: inflating lambda* changes cost only."""
        lam_c, lam_e = 60.0, 20.0
        prop = ConstantTwoStatePropensity(lambda_c=lam_c, lambda_e=lam_e)
        tight = simulate_trap(prop, 0.0, 300.0, rng_factory(3))
        loose = simulate_trap(prop, 0.0, 300.0, rng_factory(4),
                              rate_bound=10.0 * (lam_c + lam_e))
        assert tight.fraction_filled() == pytest.approx(
            loose.fraction_filled(), abs=0.02)
        __, p_value = stats.ks_2samp(tight.dwell_times(1), loose.dwell_times(1))
        assert p_value > 1e-3

    def test_loose_bound_costs_more_candidates(self, rng_factory):
        prop = ConstantTwoStatePropensity(lambda_c=60.0, lambda_e=20.0)
        __, tight = simulate_trap_detailed(prop, 0.0, 100.0, rng_factory(5))
        __, loose = simulate_trap_detailed(prop, 0.0, 100.0, rng_factory(6),
                                           rate_bound=10.0 * 80.0)
        assert loose.n_candidates > 5 * tight.n_candidates
        assert loose.acceptance_ratio < tight.acceptance_ratio


class TestNonStationaryStatistics:
    """Under time-varying rates the kernel must track the master equation."""

    def test_relaxation_from_empty(self, rng):
        """p1(t) relaxation at constant rates from a non-equilibrium start."""
        lam_c, lam_e = 200.0, 100.0
        prop = ConstantTwoStatePropensity(lambda_c=lam_c, lambda_e=lam_e)
        n_runs = 400
        grid = np.linspace(0.0, 0.02, 21)
        counts = np.zeros_like(grid)
        for _ in range(n_runs):
            trace = simulate_trap(prop, 0.0, 0.02, rng, initial_state=0)
            counts += trace.sample(grid)
        empirical = counts / n_runs
        expected = occupancy_probability_constant(grid, lam_c, lam_e, 0.0)
        assert np.max(np.abs(empirical - expected)) < 0.08

    def test_sinusoidal_bias_tracks_master_equation(self, rng):
        """Time-varying beta with constant sum — the SAMURAI trap structure."""
        total = 500.0
        omega = 2.0 * np.pi * 50.0

        def lam_c(t):
            return total * (0.5 + 0.4 * np.sin(omega * np.asarray(t)))

        def lam_e(t):
            return total - lam_c(t)

        prop = CallableTwoStatePropensity(capture_fn=lam_c, emission_fn=lam_e, rate_bound=total)
        t_stop = 0.04
        grid = np.linspace(0.0, t_stop, 33)
        n_runs = 600
        counts = np.zeros_like(grid)
        for _ in range(n_runs):
            trace = simulate_trap(prop, 0.0, t_stop, rng, initial_state=0)
            counts += trace.sample(grid)
        empirical = counts / n_runs
        expected = occupancy_probability(grid, lam_c, lam_e, 0.0)
        assert np.max(np.abs(empirical - expected)) < 0.08

    def test_step_bias_switches_occupancy(self, rng):
        """A step in beta must move the occupancy to the new equilibrium."""
        total = 1000.0

        def lam_c(t):
            return np.where(np.asarray(t) < 0.05, 0.9 * total, 0.1 * total)

        def lam_e(t):
            return total - lam_c(t)

        prop = CallableTwoStatePropensity(capture_fn=lam_c, emission_fn=lam_e, rate_bound=total)
        n_runs = 300
        before = np.zeros(n_runs)
        after = np.zeros(n_runs)
        for i in range(n_runs):
            trace = simulate_trap(prop, 0.0, 0.1, rng, initial_state=0)
            before[i] = trace.state_at(0.049)
            after[i] = trace.state_at(0.099)
        assert before.mean() == pytest.approx(0.9, abs=0.07)
        assert after.mean() == pytest.approx(0.1, abs=0.07)

    def test_sampled_propensity_end_to_end(self, rng):
        """The SampledTwoStatePropensity path used by SAMURAI proper."""
        times = np.linspace(0.0, 0.1, 101)
        capture = 400.0 + 300.0 * np.sin(2 * np.pi * 30.0 * times)
        emission = 800.0 - capture
        prop = SampledTwoStatePropensity(times=times, capture_values=capture, emission_values=emission)
        trace = simulate_trap(prop, 0.0, 0.1, rng)
        assert trace.t_stop == 0.1
        assert trace.n_transitions > 10
