"""Tests for the batched uniformisation kernel.

The load-bearing check is statistical equivalence: under a seed-split,
the batched kernel's occupancy statistics must agree with the scalar
Algorithm-1 kernel within Monte-Carlo tolerance, for both stationary
and strongly non-stationary rates, on both internal sweep layouts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, SimulationError
from repro.markov.batch import (
    BatchPropensity,
    BatchUniformizationStats,
    simulate_traps_batch,
)
from repro.markov.occupancy import OccupancyTrace
from repro.markov.propensity import (
    CallableTwoStatePropensity,
    ConstantTwoStatePropensity,
    SampledTwoStatePropensity,
)
from repro.markov.uniformization import simulate_trap

pytestmark = pytest.mark.tier1

GRID = np.linspace(0.0, 1.0, 1001)


def _constant_batch(n_traps: int, lam_c: float, lam_e: float
                    ) -> BatchPropensity:
    return BatchPropensity(
        times=GRID,
        capture=np.full((n_traps, GRID.size), lam_c),
        emission=np.full((n_traps, GRID.size), lam_e),
    )


def _revalidate(traces) -> None:
    """Re-run the full OccupancyTrace validation on trusted traces."""
    for trace in traces:
        OccupancyTrace(times=trace.times.copy(), states=trace.states.copy())


class TestBatchPropensity:
    def test_validation(self):
        with pytest.raises(ModelError):
            BatchPropensity(times=np.array([0.0]), capture=np.ones((1, 1)),
                            emission=np.ones((1, 1)))
        with pytest.raises(ModelError):
            BatchPropensity(times=np.array([0.0, 1.0]),
                            capture=np.ones((2, 2)),
                            emission=np.ones((3, 2)))
        with pytest.raises(ModelError):
            BatchPropensity(times=np.array([0.0, 1.0]),
                            capture=-np.ones((1, 2)),
                            emission=np.ones((1, 2)))

    def test_rate_sums_and_single(self):
        batch = _constant_batch(3, 2.0, 5.0)
        assert np.allclose(batch.rate_sums(), 7.0)
        single = batch.single(1)
        assert isinstance(single, SampledTwoStatePropensity)
        assert single.capture(0.5) == pytest.approx(2.0)

    def test_sum_info_detects_constant_sum(self):
        assert _constant_batch(2, 1.0, 2.0)._sum_info()[1]
        varying = BatchPropensity(
            times=GRID,
            capture=np.tile(1.0 + GRID, (2, 1)),
            emission=np.ones((2, GRID.size)),
        )
        assert not varying._sum_info()[1]

    def test_from_propensities_shared_grid_is_exact(self):
        props = [
            SampledTwoStatePropensity(
                times=GRID, capture_values=np.full(GRID.size, float(k + 1)),
                emission_values=np.full(GRID.size, 2.0))
            for k in range(3)
        ]
        batch = BatchPropensity.from_propensities(props)
        assert batch.n_traps == 3
        assert np.array_equal(batch.capture[2], props[2].capture_values)

    def test_from_propensities_union_grid(self):
        a = SampledTwoStatePropensity(
            times=np.array([0.0, 0.5, 1.0]),
            capture_values=np.array([1.0, 3.0, 1.0]),
            emission_values=np.array([2.0, 2.0, 2.0]))
        b = SampledTwoStatePropensity(
            times=np.array([0.0, 0.25, 1.0]),
            capture_values=np.array([4.0, 1.0, 4.0]),
            emission_values=np.array([1.0, 1.0, 1.0]))
        batch = BatchPropensity.from_propensities([a, b])
        # The union grid contains every knot, so piecewise-linear rates
        # are represented exactly.
        for t in (0.0, 0.1, 0.25, 0.5, 0.77, 1.0):
            idx, w = batch.grid_coordinates(np.array([t]))
            got = (1.0 - w) * batch.capture[0, idx] \
                + w * batch.capture[0, idx + 1]
            assert got[0] == pytest.approx(float(a.capture(t)), rel=1e-12)

    def test_from_propensities_constants(self):
        batch = BatchPropensity.from_propensities(
            [ConstantTwoStatePropensity(lambda_c=1.0, lambda_e=2.0),
             ConstantTwoStatePropensity(lambda_c=3.0, lambda_e=4.0)])
        assert batch.n_traps == 2
        assert np.allclose(batch.rate_sums(), [3.0, 7.0])

    def test_from_propensities_mixed_needs_grid(self):
        mixed = [
            ConstantTwoStatePropensity(lambda_c=1.0, lambda_e=2.0),
            CallableTwoStatePropensity(
                capture_fn=lambda t: np.full_like(np.asarray(t, float), 1.0),
                emission_fn=lambda t: np.full_like(np.asarray(t, float), 1.0),
                rate_bound=2.0),
        ]
        with pytest.raises(ModelError):
            BatchPropensity.from_propensities(mixed)
        batch = BatchPropensity.from_propensities(mixed, times=GRID)
        assert batch.n_traps == 2

    def test_empty_population_rejected(self):
        with pytest.raises(ModelError):
            BatchPropensity.from_propensities([])


class TestInterface:
    def test_rejects_bad_window(self, rng):
        batch = _constant_batch(2, 1.0, 1.0)
        with pytest.raises(SimulationError):
            simulate_traps_batch(batch, 1.0, 1.0, rng)

    def test_rejects_bad_initial_states(self, rng):
        batch = _constant_batch(2, 1.0, 1.0)
        with pytest.raises(SimulationError):
            simulate_traps_batch(batch, 0.0, 1.0, rng,
                                 initial_states=np.array([0, 2]))
        with pytest.raises(SimulationError):
            simulate_traps_batch(batch, 0.0, 1.0, rng,
                                 initial_states=np.array([0]))

    def test_rejects_non_dominating_bounds(self, rng):
        batch = _constant_batch(2, 3.0, 4.0)
        with pytest.raises(SimulationError):
            simulate_traps_batch(batch, 0.0, 1.0, rng,
                                 rate_bounds=np.array([7.0, 5.0]))

    def test_loose_bounds_accepted(self, rng):
        batch = _constant_batch(2, 3.0, 4.0)
        traces, stats = simulate_traps_batch(
            batch, 0.0, 1.0, rng, rate_bounds=np.array([14.0, 70.0]))
        assert np.allclose(stats.rate_bounds, [14.0, 70.0])
        _revalidate(traces)

    def test_trace_window_and_initial_states(self, rng):
        batch = _constant_batch(4, 20.0, 20.0)
        init = np.array([0, 1, 0, 1])
        traces, stats = simulate_traps_batch(batch, 2.0, 3.0, rng,
                                             initial_states=init)
        assert len(traces) == 4
        for trace, state in zip(traces, init):
            assert trace.t_start == 2.0 and trace.t_stop == 3.0
            assert trace.initial_state == int(state)
        assert stats.n_candidates.shape == (4,)
        assert stats.total_accepted == sum(t.n_transitions for t in traces)
        _revalidate(traces)

    def test_stats_aggregate(self, rng):
        batch = _constant_batch(3, 50.0, 50.0)
        _, stats = simulate_traps_batch(batch, 0.0, 1.0, rng)
        agg = stats.aggregate
        assert agg.n_candidates == stats.total_candidates
        assert agg.n_accepted == stats.total_accepted
        assert agg.rate_bound == pytest.approx(100.0)
        assert 0.0 < stats.acceptance_ratio <= 1.0

    def test_empty_stats(self):
        stats = BatchUniformizationStats(
            n_candidates=np.zeros(0, dtype=int),
            n_accepted=np.zeros(0, dtype=int), rate_bounds=np.zeros(0))
        assert stats.acceptance_ratio == 0.0
        assert stats.aggregate.rate_bound == 0.0

    def test_zero_candidate_population(self, rng):
        # Rates so low that every trap's Poisson count is zero: the
        # kernel must return flat traces, not crash on an empty layout.
        batch = _constant_batch(10, 5e-5, 5e-5)
        init = np.array([0, 1] * 5)
        traces, stats = simulate_traps_batch(batch, 0.0, 1.0, rng,
                                             initial_states=init)
        assert stats.total_candidates == 0
        assert stats.total_accepted == 0
        for trace, state in zip(traces, init):
            assert trace.n_transitions == 0
            assert trace.initial_state == int(state)
        _revalidate(traces)

    def test_grid_coordinates_clamp_far_beyond_grid(self):
        # Times astronomically past the grid end must clamp to the last
        # grid point, not wrap negative through the integer cast.
        batch = BatchPropensity(times=np.array([0.0, 1.0]),
                                capture=np.array([[2.0, 8.0]]),
                                emission=np.array([[1.0, 1.0]]))
        idx, w = batch.grid_coordinates(np.array([[-3.0, 0.5, 5e9]]))
        assert idx.tolist() == [[0, 0, 0]]
        assert w.tolist() == [[0.0, 0.5, 1.0]]

    def test_trace_buffers_are_read_only(self, rng):
        # Batched traces share backing buffers; they must be frozen so
        # mutating one trace cannot corrupt its siblings.
        batch = _constant_batch(4, 50.0, 50.0)
        traces, _ = simulate_traps_batch(batch, 0.0, 1.0, rng)
        with pytest.raises(ValueError):
            traces[0].times[0] = 99.0
        with pytest.raises(ValueError):
            traces[0].states[0] = 1


class TestStatisticalEquivalence:
    """Batch vs scalar kernel under a seed-split: same law."""

    N_TRAPS = 300

    def test_constant_rates_match_scalar_and_theory(self, rng_factory):
        lam_c, lam_e = 30.0, 45.0
        batch = _constant_batch(self.N_TRAPS, lam_c, lam_e)
        traces, _ = simulate_traps_batch(batch, 0.0, 1.0, rng_factory(1))
        _revalidate(traces)
        batch_occ = np.mean([t.fraction_filled() for t in traces])

        prop = ConstantTwoStatePropensity(lambda_c=lam_c, lambda_e=lam_e)
        scalar_rng = rng_factory(2)
        scalar_occ = np.mean([
            simulate_trap(prop, 0.0, 1.0, scalar_rng).fraction_filled()
            for _ in range(self.N_TRAPS)])

        # Both must sit near the analytic time-average from state 0:
        # integral of p(t) = p_inf (1 - exp(-S t)) over [0, 1].
        p_inf = lam_c / (lam_c + lam_e)
        total = lam_c + lam_e
        exact = p_inf * (1.0 - (1.0 - np.exp(-total)) / total)
        assert batch_occ == pytest.approx(exact, abs=0.03)
        assert batch_occ == pytest.approx(scalar_occ, abs=0.04)

    def test_nonstationary_square_wave_matches_scalar(self, rng_factory):
        # Rates that switch every 0.1 s: strongly non-stationary, with a
        # NON-constant sum so the general acceptance path is exercised.
        lam_c = np.where((GRID * 10).astype(int) % 2 == 0, 80.0, 5.0)
        lam_e = np.full(GRID.size, 40.0)
        batch = BatchPropensity(times=GRID,
                                capture=np.tile(lam_c, (self.N_TRAPS, 1)),
                                emission=np.tile(lam_e, (self.N_TRAPS, 1)))
        assert not batch._sum_info()[1]
        traces, _ = simulate_traps_batch(batch, 0.0, 1.0, rng_factory(3))
        _revalidate(traces)

        prop = SampledTwoStatePropensity(times=GRID, capture_values=lam_c,
                                         emission_values=lam_e)
        scalar_rng = rng_factory(4)
        scalar = [simulate_trap(prop, 0.0, 1.0, scalar_rng)
                  for _ in range(self.N_TRAPS)]

        query = np.linspace(0.0, 1.0, 400)
        batch_p = np.mean([t.sample(query) for t in traces], axis=0)
        scalar_p = np.mean([t.sample(query) for t in scalar], axis=0)
        high = (query * 10).astype(int) % 2 == 0
        for phase in (high, ~high):
            assert np.mean(batch_p[phase]) == pytest.approx(
                np.mean(scalar_p[phase]), abs=0.05)

    def test_flat_layout_matches_padded_layout(self, rng_factory,
                                               monkeypatch):
        # Force the flat lexsort sweep by making padding "too wasteful",
        # and check it agrees with the padded sweep statistically.
        import repro.markov.batch as batch_module
        lam_c, lam_e = 25.0, 50.0
        batch = _constant_batch(self.N_TRAPS, lam_c, lam_e)

        padded_traces, padded_stats = simulate_traps_batch(
            batch, 0.0, 1.0, rng_factory(5))
        monkeypatch.setattr(batch_module, "_PAD_MIN_BUDGET", 0)
        monkeypatch.setattr(batch_module, "_PAD_WASTE_FACTOR", 0.0)
        flat_traces, flat_stats = simulate_traps_batch(
            batch, 0.0, 1.0, rng_factory(6))
        _revalidate(flat_traces)

        assert flat_stats.total_candidates > 0
        padded_occ = np.mean([t.fraction_filled() for t in padded_traces])
        flat_occ = np.mean([t.fraction_filled() for t in flat_traces])
        assert flat_occ == pytest.approx(padded_occ, abs=0.04)

    def test_scalar_fallback_for_unstackable_population(self, rng):
        mixed = [
            ConstantTwoStatePropensity(lambda_c=40.0, lambda_e=40.0),
            CallableTwoStatePropensity(capture_fn=np.vectorize(lambda t: 40.0),
                                       emission_fn=np.vectorize(lambda t: 40.0),
                                       rate_bound=80.0),
        ]
        traces, stats = simulate_traps_batch(mixed, 0.0, 1.0, rng)
        assert len(traces) == 2
        assert stats.total_candidates > 0
        _revalidate(traces)

    def test_sequence_of_sampled_propensities_is_batched(self, rng):
        props = [SampledTwoStatePropensity(
            times=GRID, capture_values=np.full(GRID.size, 30.0),
            emission_values=np.full(GRID.size, 30.0)) for _ in range(5)]
        traces, stats = simulate_traps_batch(props, 0.0, 1.0, rng)
        assert len(traces) == 5
        assert stats.n_candidates.shape == (5,)
        _revalidate(traces)
