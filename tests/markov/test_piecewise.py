"""Tests for the piecewise-constant exact solver."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.errors import SimulationError
from repro.markov.analytic import stationary_occupancy
from repro.markov.piecewise import bias_steps_to_piecewise, simulate_piecewise
from repro.markov.propensity import CallableTwoStatePropensity
from repro.markov.uniformization import simulate_trap

pytestmark = pytest.mark.tier1


class TestInterface:
    def test_rejects_bad_breakpoints(self, rng):
        with pytest.raises(SimulationError):
            simulate_piecewise(np.array([0.0]), np.array([]), np.array([]), rng)
        with pytest.raises(SimulationError):
            simulate_piecewise(np.array([0.0, 0.0]), np.array([1.0]),
                               np.array([1.0]), rng)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(SimulationError):
            simulate_piecewise(np.array([0.0, 1.0, 2.0]), np.array([1.0]),
                               np.array([1.0, 1.0]), rng)

    def test_rejects_negative_rates(self, rng):
        with pytest.raises(SimulationError):
            simulate_piecewise(np.array([0.0, 1.0]), np.array([-1.0]),
                               np.array([1.0]), rng)

    def test_rejects_bad_state(self, rng):
        with pytest.raises(SimulationError):
            simulate_piecewise(np.array([0.0, 1.0]), np.array([1.0]),
                               np.array([1.0]), rng, initial_state=3)

    def test_window(self, rng):
        trace = simulate_piecewise(np.array([1.0, 2.0, 4.0]),
                                   np.array([10.0, 20.0]),
                                   np.array([10.0, 20.0]), rng)
        assert trace.t_start == 1.0
        assert trace.t_stop == 4.0


class TestStatistics:
    def test_single_interval_equals_gillespie_statistics(self, rng_factory):
        from repro.markov.gillespie import simulate_constant
        lam_c, lam_e = 70.0, 30.0
        pw = simulate_piecewise(np.array([0.0, 200.0]), np.array([lam_c]),
                                np.array([lam_e]), rng_factory(1))
        gil = simulate_constant(lam_c, lam_e, 0.0, 200.0, rng_factory(2))
        __, p_value = stats.ks_2samp(pw.dwell_times(1), gil.dwell_times(1))
        assert p_value > 1e-3

    def test_two_regime_occupancy(self, rng):
        """Each long regime reaches its own stationary occupancy."""
        lam = 500.0
        trace = simulate_piecewise(
            np.array([0.0, 50.0, 100.0]),
            np.array([0.8 * lam, 0.2 * lam]),
            np.array([0.2 * lam, 0.8 * lam]), rng)
        first = trace.restricted(10.0, 50.0).fraction_filled()
        second = trace.restricted(60.0, 100.0).fraction_filled()
        assert first == pytest.approx(stationary_occupancy(0.8 * lam, 0.2 * lam),
                                      abs=0.03)
        assert second == pytest.approx(stationary_occupancy(0.2 * lam, 0.8 * lam),
                                       abs=0.03)

    def test_cross_validates_uniformization(self, rng_factory):
        """Piecewise oracle vs Algorithm 1 on the same step schedule."""
        total = 400.0
        breakpoints = np.array([0.0, 0.1, 0.2, 0.3])
        captures = np.array([0.9, 0.3, 0.6]) * total
        emissions = total - captures

        def lam_c(t):
            idx = np.clip(np.searchsorted(breakpoints, t, side="right") - 1,
                          0, 2)
            return captures[idx]

        def lam_e(t):
            return total - lam_c(t)

        prop = CallableTwoStatePropensity(capture_fn=lam_c, emission_fn=lam_e, rate_bound=total)
        n_runs = 250
        grid = np.array([0.05, 0.15, 0.25])
        pw_counts = np.zeros(3)
        uni_counts = np.zeros(3)
        rng_pw = rng_factory(11)
        rng_uni = rng_factory(12)
        for _ in range(n_runs):
            pw_counts += simulate_piecewise(
                breakpoints, captures, emissions, rng_pw).state_at(grid)
            uni_counts += simulate_trap(prop, 0.0, 0.3, rng_uni).state_at(grid)
        assert np.max(np.abs(pw_counts - uni_counts)) / n_runs < 0.1


class TestBiasStepsHelper:
    def test_roundtrip(self):
        bp, cap, emi = bias_steps_to_piecewise(
            np.array([0.0, 1.0]), np.array([5.0, 1.0]), np.array([1.0, 5.0]),
            t_stop=3.0)
        assert bp.tolist() == [0.0, 1.0, 3.0]
        assert cap.tolist() == [5.0, 1.0]
        assert emi.tolist() == [1.0, 5.0]

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            bias_steps_to_piecewise(np.array([]), np.array([]), np.array([]), 1.0)

    def test_rejects_bad_t_stop(self):
        with pytest.raises(SimulationError):
            bias_steps_to_piecewise(np.array([0.0, 2.0]), np.ones(2), np.ones(2),
                                    t_stop=2.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(SimulationError):
            bias_steps_to_piecewise(np.array([0.0, 1.0]), np.ones(1), np.ones(2),
                                    t_stop=3.0)
