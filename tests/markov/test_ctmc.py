"""Tests for the general N-state CTMC extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, SimulationError
from repro.markov.ctmc import (
    CtmcPath,
    simulate_ctmc,
    two_state_generator,
    validate_generator,
)

pytestmark = pytest.mark.tier1


class TestGeneratorValidation:
    def test_accepts_valid(self):
        validate_generator(two_state_generator(3.0, 5.0))

    def test_rejects_non_square(self):
        with pytest.raises(ModelError):
            validate_generator(np.zeros((2, 3)))

    def test_rejects_negative_off_diagonal(self):
        q = np.array([[-1.0, 1.0], [-2.0, 2.0]])
        with pytest.raises(ModelError):
            validate_generator(q)

    def test_rejects_nonzero_rows(self):
        q = np.array([[-1.0, 2.0], [1.0, -1.0]])
        with pytest.raises(ModelError):
            validate_generator(q)

    def test_two_state_generator_rejects_negative(self):
        with pytest.raises(ModelError):
            two_state_generator(-1.0, 1.0)


class TestCtmcPath:
    def test_construction_and_queries(self):
        path = CtmcPath(times=np.array([0.0, 1.0, 2.0]),
                        states=np.array([0, 2]), n_states=3)
        assert path.state_at(0.5) == 0
        assert path.state_at(1.5) == 2
        fractions = path.occupancy_fractions()
        assert fractions.tolist() == [0.5, 0.0, 0.5]

    def test_rejects_out_of_range_state(self):
        with pytest.raises(ModelError):
            CtmcPath(times=np.array([0.0, 1.0]), states=np.array([5]),
                     n_states=3)

    def test_rejects_repeats(self):
        with pytest.raises(ModelError):
            CtmcPath(times=np.array([0.0, 1.0, 2.0]), states=np.array([1, 1]),
                     n_states=3)

    def test_query_outside_window(self):
        path = CtmcPath(times=np.array([0.0, 1.0]), states=np.array([0]),
                        n_states=2)
        with pytest.raises(ModelError):
            path.state_at(2.0)


class TestSimulation:
    def test_interface_validation(self, rng):
        gen = lambda t: two_state_generator(1.0, 1.0)
        with pytest.raises(SimulationError):
            simulate_ctmc(gen, 2, 1.0, 1.0, rng, 0, 10.0)
        with pytest.raises(SimulationError):
            simulate_ctmc(gen, 2, 0.0, 1.0, rng, 5, 10.0)
        with pytest.raises(SimulationError):
            simulate_ctmc(gen, 2, 0.0, 1.0, rng, 0, -1.0)

    def test_bound_violation_detected(self, rng):
        gen = lambda t: two_state_generator(100.0, 100.0)
        with pytest.raises(SimulationError):
            simulate_ctmc(gen, 2, 0.0, 10.0, rng, 0, rate_bound=1.0)

    def test_two_state_matches_occupancy(self, rng):
        lam_c, lam_e = 60.0, 20.0
        gen = lambda t: two_state_generator(lam_c, lam_e)
        path = simulate_ctmc(gen, 2, 0.0, 200.0, rng, 0,
                             rate_bound=lam_c + lam_e)
        fractions = path.occupancy_fractions()
        assert fractions[1] == pytest.approx(lam_c / (lam_c + lam_e), abs=0.03)

    def test_three_state_ring_uniform_occupancy(self, rng):
        """A symmetric 3-ring must occupy each state 1/3 of the time."""
        rate = 50.0
        q = np.array([
            [-2 * rate, rate, rate],
            [rate, -2 * rate, rate],
            [rate, rate, -2 * rate],
        ])
        path = simulate_ctmc(lambda t: q, 3, 0.0, 100.0, rng, 0,
                             rate_bound=2 * rate)
        fractions = path.occupancy_fractions()
        assert np.max(np.abs(fractions - 1.0 / 3.0)) < 0.04

    def test_time_varying_generator(self, rng):
        """Occupancy follows a switched two-state generator."""
        def gen(t):
            if t < 1.0:
                return two_state_generator(90.0, 10.0)
            return two_state_generator(10.0, 90.0)

        path = simulate_ctmc(gen, 2, 0.0, 2.0, rng, 0, rate_bound=100.0)
        grid_early = np.linspace(0.5, 0.99, 50)
        grid_late = np.linspace(1.5, 1.99, 50)
        early = np.mean([path.state_at(t) for t in grid_early])
        late = np.mean([path.state_at(t) for t in grid_late])
        assert early > 0.6
        assert late < 0.4
