"""Unit and property tests for OccupancyTrace."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError, ModelError
from repro.markov.occupancy import OccupancyTrace, number_filled

pytestmark = pytest.mark.tier1


def make_trace() -> OccupancyTrace:
    return OccupancyTrace(
        times=np.array([0.0, 1.0, 3.0, 4.0]),
        states=np.array([0, 1, 0]),
    )


class TestConstruction:
    def test_valid_trace_roundtrips(self):
        trace = make_trace()
        assert trace.t_start == 0.0
        assert trace.t_stop == 4.0
        assert trace.n_transitions == 2
        assert trace.initial_state == 0
        assert trace.final_state == 0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ModelError):
            OccupancyTrace(times=np.array([0.0, 1.0]), states=np.array([0, 1]))

    def test_rejects_empty_segments(self):
        with pytest.raises(ModelError):
            OccupancyTrace(times=np.array([0.0]), states=np.array([]))

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ModelError):
            OccupancyTrace(times=np.array([0.0, 2.0, 2.0]), states=np.array([0, 1]))

    def test_rejects_bad_states(self):
        with pytest.raises(ModelError):
            OccupancyTrace(times=np.array([0.0, 1.0]), states=np.array([2]))

    def test_rejects_repeated_states(self):
        with pytest.raises(ModelError):
            OccupancyTrace(times=np.array([0.0, 1.0, 2.0]), states=np.array([1, 1]))

    def test_constant_factory(self):
        trace = OccupancyTrace.constant(0.0, 5.0, 1)
        assert trace.n_transitions == 0
        assert trace.fraction_filled() == 1.0

    def test_from_transitions(self):
        trace = OccupancyTrace.from_transitions(0.0, 10.0, 1, np.array([2.0, 7.0]))
        assert trace.initial_state == 1
        assert list(trace.states) == [1, 0, 1]

    def test_from_transitions_rejects_flip_on_boundary(self):
        with pytest.raises(ModelError):
            OccupancyTrace.from_transitions(0.0, 10.0, 0, np.array([0.0]))
        with pytest.raises(ModelError):
            OccupancyTrace.from_transitions(0.0, 10.0, 0, np.array([10.0]))


class TestStateQueries:
    def test_state_at_scalar(self):
        trace = make_trace()
        assert trace.state_at(0.5) == 0
        assert trace.state_at(2.0) == 1
        assert trace.state_at(3.5) == 0

    def test_state_at_right_open_convention(self):
        trace = make_trace()
        assert trace.state_at(1.0) == 1  # new state starts at the flip
        assert trace.state_at(3.0) == 0

    def test_state_at_endpoints(self):
        trace = make_trace()
        assert trace.state_at(0.0) == 0
        assert trace.state_at(4.0) == 0  # t_stop returns final state

    def test_state_at_vectorised(self):
        trace = make_trace()
        values = trace.state_at(np.array([0.5, 2.0, 3.5]))
        assert list(values) == [0, 1, 0]

    def test_state_at_out_of_window_raises(self):
        trace = make_trace()
        with pytest.raises(AnalysisError):
            trace.state_at(-0.1)
        with pytest.raises(AnalysisError):
            trace.state_at(4.1)

    def test_sample_matches_state_at(self):
        trace = make_trace()
        grid = np.linspace(0.0, 4.0, 41)
        assert np.array_equal(trace.sample(grid), trace.state_at(grid))


class TestStatistics:
    def test_fraction_filled(self):
        trace = make_trace()
        assert trace.fraction_filled() == pytest.approx(2.0 / 4.0)

    def test_dwell_times_excludes_censored(self):
        trace = make_trace()
        # Only the middle segment (state 1, duration 2) is uncensored.
        assert trace.dwell_times(1).tolist() == [2.0]
        assert trace.dwell_times(0).tolist() == []

    def test_dwell_times_include_censored(self):
        trace = make_trace()
        assert sorted(trace.dwell_times(0, include_censored=True).tolist()) == \
            [1.0, 1.0]

    def test_dwell_times_bad_state(self):
        with pytest.raises(AnalysisError):
            make_trace().dwell_times(2)

    def test_transition_times(self):
        assert make_trace().transition_times().tolist() == [1.0, 3.0]


class TestConversions:
    def test_step_arrays_staircase(self):
        trace = make_trace()
        t, s = trace.to_step_arrays()
        assert t.tolist() == [0.0, 1.0, 1.0, 3.0, 3.0, 4.0]
        assert s.tolist() == [0, 0, 1, 1, 0, 0]

    def test_restricted_interior(self):
        trace = make_trace()
        sub = trace.restricted(0.5, 3.5)
        assert sub.t_start == 0.5
        assert sub.t_stop == 3.5
        assert list(sub.states) == [0, 1, 0]
        assert sub.state_at(2.0) == 1

    def test_restricted_single_segment(self):
        trace = make_trace()
        sub = trace.restricted(1.2, 2.8)
        assert sub.n_transitions == 0
        assert sub.initial_state == 1

    def test_restricted_bad_window(self):
        with pytest.raises(AnalysisError):
            make_trace().restricted(-1.0, 2.0)
        with pytest.raises(AnalysisError):
            make_trace().restricted(3.0, 3.0)


class TestNumberFilled:
    def test_counts_filled_traces(self):
        a = OccupancyTrace.constant(0.0, 4.0, 1)
        b = make_trace()
        grid = np.array([0.5, 2.0, 3.5])
        assert number_filled([a, b], grid).tolist() == [1.0, 2.0, 1.0]

    def test_empty_list_is_zero(self):
        grid = np.linspace(0.0, 1.0, 5)
        assert np.array_equal(number_filled([], grid), np.zeros(5))


@settings(max_examples=50, deadline=None)
@given(
    flips=st.lists(
        st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
        max_size=30, unique=True,
    ),
    initial=st.integers(min_value=0, max_value=1),
)
def test_property_from_transitions_consistency(flips, initial):
    """Sampling immediately after each flip reflects the parity of flips."""
    flips = np.array(sorted(flips))
    trace = OccupancyTrace.from_transitions(0.0, 1.0, initial, flips)
    assert trace.initial_state == initial
    assert trace.n_transitions == len(flips)
    # The state after k flips has parity initial + k.
    for k, t in enumerate(flips):
        assert trace.state_at(t) == (initial + k + 1) % 2
    # Time-average consistency: fraction_filled equals integral of samples.
    grid = np.linspace(0.0, 1.0, 20001)
    approx = trace.sample(grid)[:-1].mean()
    assert abs(approx - trace.fraction_filled()) < 5e-3


@settings(max_examples=30, deadline=None)
@given(
    flips=st.lists(
        st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
        max_size=20, unique=True,
    ),
)
def test_property_restriction_preserves_states(flips):
    """A restriction agrees with the parent trace everywhere inside it."""
    trace = OccupancyTrace.from_transitions(0.0, 1.0, 0, np.array(sorted(flips)))
    sub = trace.restricted(0.25, 0.75)
    grid = np.linspace(0.25, 0.75, 101)
    assert np.array_equal(sub.sample(grid), trace.sample(grid))
