#!/usr/bin/env python
"""Validate a Chrome ``trace_event`` JSON file written by ``--trace-out``.

Usage::

    PYTHONPATH=src python scripts/check_trace_schema.py trace.json [...]

Exits non-zero (and lists the problems) if any file fails the schema
check in :func:`repro.obs.tracer.validate_chrome_trace` — the contract
that keeps committed example traces loadable in Perfetto and
chrome://tracing.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.obs.tracer import validate_chrome_trace


def main(argv: list) -> int:
    if not argv:
        print("usage: check_trace_schema.py TRACE.json [TRACE.json ...]",
              file=sys.stderr)
        return 2
    failures = 0
    for arg in argv:
        path = Path(arg)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failures += 1
            continue
        problems = validate_chrome_trace(document)
        if problems:
            failures += 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            events = len(document.get("traceEvents", []))
            print(f"{path}: ok ({events} events)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
