#!/usr/bin/env python
"""Lint: parallel dispatch belongs to ``repro.core``, nowhere else.

Usage::

    python scripts/check_layers.py [SRC_DIR]

The scenario layer only pays off if it stays the *single* road to
parallel execution: a domain module that quietly opens its own
``multiprocessing`` pool or ``concurrent.futures`` executor bypasses
the backends, the retry/timeout resilience, checkpoint/resume, fault
injection and observability that :mod:`repro.core.scenario` and
:mod:`repro.core.engine` provide — and its results stop being
backend-invariant.  This script fails the build when any module under
``src/repro/`` outside ``repro.core`` imports ``multiprocessing`` or
``concurrent.futures`` (including ``from multiprocessing import ...``
and function-local imports).

The check is syntactic (AST, no imports), so it cannot be fooled by
import-time side effects and needs no dependencies.

Exemptions are explicit and carry their rationale:

- ``testing/faults.py`` — the ``worker`` fault site needs
  ``multiprocessing.parent_process()`` to decide whether killing the
  hosting process is survivable; it dispatches nothing.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Module prefixes whose import marks a layering violation.
BANNED = ("multiprocessing", "concurrent.futures")

#: Directory (relative to the package root) allowed to use them.
CORE = "core"

#: path (relative to src/repro) -> why it may touch a banned module.
EXEMPT = {
    "testing/faults.py":
        "worker fault site probes multiprocessing.parent_process() only",
}


def _banned(module: str | None) -> str | None:
    if module is None:
        return None
    for prefix in BANNED:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    # `from concurrent import futures` smuggles in the same executor.
    if module == "concurrent":
        return "concurrent.futures"
    return None


def banned_imports(path: Path) -> list:
    """(line, module) pairs of banned imports anywhere in the file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                prefix = _banned(alias.name)
                if prefix:
                    hits.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "concurrent" and any(
                    alias.name == "futures" for alias in node.names):
                hits.append((node.lineno, "concurrent.futures"))
            elif _banned(node.module):
                hits.append((node.lineno, node.module))
    return hits


def main(argv: list) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent \
        / "src" / "repro"
    files = sorted(root.rglob("*.py"))
    if not files:
        print(f"{root}: no source files found", file=sys.stderr)
        return 2
    violations = []
    checked = exempt = 0
    for path in files:
        relative = path.relative_to(root).as_posix()
        if relative == f"{CORE}" or relative.startswith(f"{CORE}/"):
            continue
        if relative in EXEMPT:
            exempt += 1
            continue
        checked += 1
        for line, module in banned_imports(path):
            violations.append((path, line, module))
    for path, line, module in violations:
        print(f"{path}:{line}: imports {module} outside repro.core — "
              "route the work through repro.core.scenario / "
              "repro.core.engine instead", file=sys.stderr)
    print(f"{checked} modules checked outside repro.core "
          f"({exempt} exempt): {len(violations)} layering violations")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
