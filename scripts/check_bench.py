#!/usr/bin/env python
"""Gate engine-backend performance against the committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_ensemble_scaling.py \
        -k backend_axis --quick
    python scripts/check_bench.py                 # gate the fresh run
    python scripts/check_bench.py --regen         # bless new numbers

The benchmark writes ``benchmarks/out/BENCH_engine.json``; this script
compares its **dimensionless speedups** (shared-over-process ratios)
against ``benchmarks/BENCH_engine.json`` and fails when a fresh ratio
falls more than ``--band`` (default 20 %) below the committed one.
Absolute wall-clock seconds are reported but never gated — they track
the machine, not the code.  The gate is one-sided: running *faster*
than baseline passes; bless a legitimately better baseline with
``--regen`` and commit it with the change that earned it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FRESH = REPO / "benchmarks" / "out" / "BENCH_engine.json"
BASELINE = REPO / "benchmarks" / "BENCH_engine.json"
SCHEMA = "repro.bench_engine/1"

#: Gated metrics: (workload key, human label).
RATIOS = (("transport", "transport shared/process"),
          ("ensemble", "ensemble shared/process"))


def _load(path: Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: schema {data.get('schema')!r}, "
                         f"expected {SCHEMA!r}")
    return data


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare BENCH_engine.json against the baseline")
    parser.add_argument("fresh", nargs="?", type=Path, default=FRESH,
                        help=f"fresh benchmark report (default {FRESH})")
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help=f"committed baseline (default {BASELINE})")
    parser.add_argument("--band", type=float, default=0.2,
                        help="allowed one-sided slowdown (default 0.2)")
    parser.add_argument("--regen", action="store_true",
                        help="copy the fresh report over the baseline")
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"{args.fresh}: missing — run the backend-axis benchmark "
              "first (pytest benchmarks/bench_ensemble_scaling.py "
              "-k backend_axis)", file=sys.stderr)
        return 2
    fresh = _load(args.fresh)

    if args.regen:
        args.baseline.write_text(
            json.dumps(fresh, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"{args.baseline}: blessed from {args.fresh}")
        return 0

    if not args.baseline.exists():
        print(f"{args.baseline}: missing baseline — bless one with "
              "--regen", file=sys.stderr)
        return 2
    baseline = _load(args.baseline)

    failed = False
    for key, label in RATIOS:
        got = float(fresh[key]["speedup"])
        want = float(baseline[key]["speedup"])
        floor = want * (1.0 - args.band)
        verdict = "ok" if got >= floor else "REGRESSION"
        failed |= got < floor
        print(f"{label:30s} fresh {got:6.2f}x  baseline {want:6.2f}x  "
              f"floor {floor:5.2f}x  {verdict}")
    if failed:
        print(f"\nperf gate failed: a speedup fell > {args.band:.0%} "
              "below the committed baseline", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
