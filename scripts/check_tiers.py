#!/usr/bin/env python
"""Lint: every test module must declare its CI tier.

Usage::

    python scripts/check_tiers.py [TESTS_DIR]

The CI split only works if membership is total: a test file without a
module-level ``pytestmark`` tier marker silently runs in *both* jobs
(or, worse, is forgotten when someone flips the default).  This script
fails the build when any ``test_*.py``/``bench_*.py`` under ``tests/``
lacks a ``pytestmark`` line naming ``pytest.mark.tier1`` or
``pytest.mark.tier2``.

The check is syntactic (AST, no imports), so it cannot be fooled by
expensive collection-time side effects and needs no dependencies.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

TIERS = {"tier1", "tier2"}


def _marker_names(node: ast.AST) -> set:
    """Tier names in a ``pytestmark`` assignment value expression."""
    found = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in TIERS:
            found.add(sub.attr)
    return found


def file_tiers(path: Path) -> set:
    """Tier markers declared by a module-level ``pytestmark``."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    tiers: set = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "pytestmark":
                tiers |= _marker_names(node.value)
    return tiers


def main(argv: list) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent \
        / "tests"
    patterns = ("test_*.py", "bench_*.py")
    files = sorted(p for pattern in patterns for p in root.rglob(pattern))
    if not files:
        print(f"{root}: no test files found", file=sys.stderr)
        return 2
    missing = []
    counts = {"tier1": 0, "tier2": 0}
    for path in files:
        tiers = file_tiers(path)
        if not tiers:
            missing.append(path)
        for tier in tiers:
            counts[tier] += 1
    for path in missing:
        print(f"{path}: no module-level pytestmark tier marker "
              "(add `pytestmark = pytest.mark.tier1` or tier2)",
              file=sys.stderr)
    print(f"{len(files)} test modules: {counts['tier1']} tier1, "
          f"{counts['tier2']} tier2, {len(missing)} unmarked")
    return 1 if missing else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
