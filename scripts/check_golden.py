#!/usr/bin/env python
"""Verify or regenerate the committed golden statistics artifact.

Usage::

    PYTHONPATH=src python scripts/check_golden.py            # verify
    PYTHONPATH=src python scripts/check_golden.py --regen    # regenerate

Verification recomputes every canonical scenario statistic and compares
it against ``tests/golden/statistics.json`` under the per-entry
tolerances (see :mod:`repro.verify.golden`).  Regeneration rewrites the
artifact with fresh provenance (wall time, seed, library version) —
commit the result together with the change that legitimately moved the
numbers, and say *why* in the commit message.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.verify.golden import (
    DEFAULT_SEED,
    compare_golden,
    compute_golden_statistics,
    load_golden,
    save_golden,
)

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" \
    / "statistics.json"


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="verify or regenerate the golden statistics artifact")
    parser.add_argument("--path", type=Path, default=DEFAULT_PATH,
                        help=f"artifact location (default {DEFAULT_PATH})")
    parser.add_argument("--regen", action="store_true",
                        help="rewrite the artifact instead of verifying")
    parser.add_argument("--seed", type=int, default=None,
                        help="root seed (default: the artifact's own seed, "
                             f"or {DEFAULT_SEED} when regenerating)")
    args = parser.parse_args(argv)

    if args.regen:
        seed = DEFAULT_SEED if args.seed is None else args.seed
        stats = compute_golden_statistics(seed)
        args.path.parent.mkdir(parents=True, exist_ok=True)
        save_golden(args.path, stats, seed)
        print(f"{args.path}: wrote {len(stats)} statistics (seed {seed})")
        return 0

    if not args.path.exists():
        print(f"{args.path}: missing — generate it with --regen",
              file=sys.stderr)
        return 2
    report = compare_golden(load_golden(args.path), seed=args.seed)
    print(report.table())
    if report.passed:
        print(f"{args.path}: ok ({len(report.checks)} statistics)")
        return 0
    for check in report.failures:
        print(f"{args.path}: {check.name}: {check.detail}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
